"""Zone files: the paper's domain data source.

    "We obtain our datasets through DNS resolutions from zone files
    available at Verisign (.net/.com) and PIR (.org)." — Section 3

This module writes and parses (simplified) DNS master-file zone dumps so
the population pipeline can mirror the paper's: generate a zone, dump it
to disk, and build the crawl list by *reading the zone file back* instead
of passing domains around in memory. The format is a faithful subset of
RFC 1035 master files as TLD zone dumps actually look: ``$ORIGIN``,
comments, and one NS record per delegated name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class ZoneFile:
    """A TLD zone: delegated second-level names under one origin."""

    origin: str                      # e.g. "org."
    domains: list = field(default_factory=list)  # bare SLDs, no TLD suffix

    def __post_init__(self) -> None:
        if not self.origin.endswith("."):
            raise ValueError("zone origin must be absolute (end with '.')")

    @property
    def tld(self) -> str:
        return self.origin.rstrip(".")

    def fqdns(self) -> list:
        return [f"{name}.{self.tld}" for name in self.domains]

    # -- serialization ------------------------------------------------------------

    def dump(self) -> str:
        """RFC-1035-style master file text (NS delegations only)."""
        lines = [
            f"$ORIGIN {self.origin}",
            "$TTL 86400",
            f"; {len(self.domains)} delegations",
        ]
        for name in self.domains:
            lines.append(f"{name}\tIN\tNS\tns1.registrar-servers.example.")
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        import pathlib

        pathlib.Path(path).write_text(self.dump())

    @classmethod
    def parse(cls, text: str) -> "ZoneFile":
        """Parse a zone dump; tolerates comments and unknown record types."""
        origin: Optional[str] = None
        domains: list[str] = []
        seen: set = set()
        for raw_line in text.splitlines():
            line = raw_line.split(";", 1)[0].strip()
            if not line:
                continue
            if line.startswith("$ORIGIN"):
                parts = line.split()
                if len(parts) != 2:
                    raise ValueError(f"malformed $ORIGIN line: {raw_line!r}")
                origin = parts[1]
                continue
            if line.startswith("$"):
                continue  # $TTL and friends
            fields = line.split()
            if len(fields) < 4 or fields[1] != "IN":
                continue
            if fields[2] != "NS":
                continue  # TLD dumps also carry glue A/AAAA records
            name = fields[0].rstrip(".").lower()
            if name and name not in seen:
                seen.add(name)
                domains.append(name)
        if origin is None:
            raise ValueError("zone file has no $ORIGIN")
        return cls(origin=origin, domains=domains)

    @classmethod
    def read(cls, path) -> "ZoneFile":
        import pathlib

        return cls.parse(pathlib.Path(path).read_text())

    def __len__(self) -> int:
        return len(self.domains)


def zone_from_population(population) -> ZoneFile:
    """Dump a built web population's domains as its TLD zone."""
    tld = population.spec.tld
    suffix = "." + tld
    domains = []
    for site in population.sites:
        name = site.domain[: -len(suffix)] if site.domain.endswith(suffix) else site.domain
        domains.append(name)
    return ZoneFile(origin=f"{tld}.", domains=domains)


def write_zone_stream(path, origin: str, names: Iterator[str]) -> int:
    """Stream a zone dump to disk without materializing the name list.

    ``names`` yields bare SLDs (or FQDNs, which are trimmed against the
    origin). Returns the delegation count. This is how a 10M-domain
    streaming population dumps its zone in O(1) memory — the delegation
    count lands in a trailing comment since it is unknown up front.
    """
    import pathlib

    if not origin.endswith("."):
        raise ValueError("zone origin must be absolute (end with '.')")
    suffix = "." + origin.rstrip(".")
    count = 0
    with pathlib.Path(path).open("w") as handle:
        handle.write(f"$ORIGIN {origin}\n$TTL 86400\n")
        for name in names:
            if name.endswith(suffix):
                name = name[: -len(suffix)]
            handle.write(f"{name}\tIN\tNS\tns1.registrar-servers.example.\n")
            count += 1
        handle.write(f"; {count} delegations\n")
    return count


def iter_zone_fqdns(path) -> Iterator[str]:
    """Stream FQDNs back out of a zone dump in O(1) memory.

    The lazy inverse of :func:`write_zone_stream` /
    :meth:`ZoneFile.read` — crawl lists over zone-scale dumps should
    iterate this instead of parsing the whole file into a list.
    """
    import pathlib

    origin = None
    with pathlib.Path(path).open() as handle:
        for raw_line in handle:
            line = raw_line.split(";", 1)[0].strip()
            if not line:
                continue
            if line.startswith("$ORIGIN"):
                parts = line.split()
                if len(parts) != 2:
                    raise ValueError(f"malformed $ORIGIN line: {raw_line!r}")
                origin = parts[1]
                continue
            if line.startswith("$"):
                continue
            fields = line.split()
            if len(fields) < 4 or fields[1] != "IN" or fields[2] != "NS":
                continue
            if origin is None:
                raise ValueError("zone file has no $ORIGIN before records")
            name = fields[0].rstrip(".").lower()
            if name:
                yield f"{name}.{origin.rstrip('.')}"


def crawl_list_from_zone(zone: ZoneFile, resolver=None) -> Iterator[str]:
    """The paper's pipeline: zone names → (optional) DNS filter → crawl list.

    ``resolver`` is an optional predicate standing in for the paper's
    "DNS-based Active Internet Observatory" resolution step (names that do
    not resolve are skipped).
    """
    for fqdn in zone.fqdns():
        if resolver is None or resolver(fqdn):
            yield fqdn
