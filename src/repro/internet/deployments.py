"""Miner deployment kits for all families.

Coinhive/Authedmine deployments ride on the full
:class:`~repro.coinhive.service.CoinhiveService`; the clone families
(Cryptoloot, skencituer, web.stati.bid, …) get a lighter kit: their Wasm
from the corpus, a family WebSocket endpoint speaking the same stratum-like
protocol with canned jobs, and script tags in official or self-hosted
flavour. The crawler cannot tell the difference — which is the point: the
paper classified these families from exactly these observables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.block import BlockHeader, hashing_blob
from repro.pool.protocol import (
    JobMessage,
    LoginMessage,
    SubmitMessage,
    SubmitResult,
    decode_message,
    encode_message,
    target_hex_for_difficulty,
)
from repro.sim.rng import RngStream
from repro.wasm.builder import FAMILY_PROFILES, ModuleBlueprint, WasmCorpusBuilder
from repro.web.http import Resource, SyntheticWeb
from repro.web.scripts import MinerBehavior, ScriptTag


def _canned_blob(rng: RngStream) -> bytes:
    """A structurally valid hashing blob for canned jobs."""
    header = BlockHeader(
        major=7,
        minor=7,
        timestamp=1526000000 + rng.randint(0, 10**6),
        prev_id=rng.randbytes(32),
        nonce=0,
    )
    return hashing_blob(header, rng.randbytes(32), rng.randint(1, 12))


def make_canned_pool_handler(rng: RngStream, share_difficulty: int = 16):
    """A WebSocket handler that speaks the pool protocol with canned jobs.

    Stateless per frame: auth → job, submit → accepted. Enough for the
    crawler-side observables (frames, backends); these pools' blocks are
    not part of the chain experiments.
    """

    def handler(channel, payload: str) -> None:
        try:
            message = decode_message(payload)
        except Exception:
            return
        if isinstance(message, LoginMessage):
            blob = _canned_blob(rng)
            job = JobMessage(
                job_id=blob[:8].hex(),
                blob_hex=blob.hex(),
                target_hex=target_hex_for_difficulty(share_difficulty),
            )
            channel.server_send(encode_message(job))
        elif isinstance(message, SubmitMessage):
            channel.server_send(encode_message(SubmitResult(True)))

    return handler


@dataclass
class FamilyMinerKit:
    """Deployable assets for one non-Coinhive miner family."""

    family: str
    web: SyntheticWeb
    rng: RngStream
    corpus: WasmCorpusBuilder = field(default_factory=WasmCorpusBuilder)
    num_endpoints: int = 4
    _installed: bool = False
    _wasm_urls: dict = field(default_factory=dict)

    def profile(self):
        return FAMILY_PROFILES[self.family]

    def endpoint_url(self, index: int) -> str:
        template = self.profile().backend
        if template is None:
            raise ValueError(f"family {self.family} has no backend")
        return template % (index % self.num_endpoints + 1)

    def install(self) -> None:
        if self._installed:
            return
        for i in range(self.num_endpoints):
            self.web.register_ws(
                self.endpoint_url(i), make_canned_pool_handler(self.rng.substream(f"pool{i}"))
            )
        self._installed = True

    def _wasm_url_for(self, variant: int, host: Optional[str]) -> str:
        if host is not None:
            url = f"https://{host}/static/engine.wasm"
        else:
            base_host = self.endpoint_url(0).split("://", 1)[1].split("/")[0]
            url = f"https://{base_host}/lib/proc-v{variant}.wasm"
        if url not in self._wasm_urls:
            self.web.register(
                url,
                Resource(
                    content=self.corpus.build(ModuleBlueprint(self.family, variant)),
                    content_type="application/wasm",
                ),
            )
            self._wasm_urls[url] = variant
        return url

    def tags(
        self,
        token: str,
        variant: int = 0,
        self_host: Optional[str] = None,
        endpoint_index: int = 0,
        official_js: bool = False,
    ) -> list:
        """Script tags deploying this family on a site.

        ``official_js=True`` uses a recognizable third-party script URL
        (NoCoin-matchable when the family is listed); otherwise the loader
        is first-party and only the Wasm/WebSocket give it away.
        """
        self.install()
        wasm_url = self._wasm_url_for(variant, self_host)
        behavior = MinerBehavior(
            wasm_url=wasm_url,
            socket_url=self.endpoint_url(endpoint_index),
            token=token,
        )
        if official_js:
            base_host = self.endpoint_url(0).split("://", 1)[1].split("/")[0]
            js_url = f"https://{base_host}/lib/{self.family.replace('.', '-')}.min.js"
            if js_url not in self._wasm_urls:
                self.web.register(
                    js_url, Resource(content=b"/*loader*/", content_type="text/javascript")
                )
                self._wasm_urls[js_url] = -1
            return [
                ScriptTag(src=js_url),
                ScriptTag(inline=f"startMiner('{token}');", behavior=behavior),
            ]
        host = self_host or "cdn.site-assets.net"
        js_url = f"https://{host}/js/app-{token[:6].lower()}.js"
        self.web.register(js_url, Resource(content=b"/*app*/", content_type="text/javascript"))
        return [
            ScriptTag(src=js_url),
            ScriptTag(inline=f"(function(){{init('{token}');}})();", behavior=behavior),
        ]


@dataclass
class BenignWasmKit:
    """Deploys non-mining Wasm (games, codecs, math) on sites."""

    web: SyntheticWeb
    corpus: WasmCorpusBuilder = field(default_factory=WasmCorpusBuilder)
    _urls: dict = field(default_factory=dict)

    def tags(self, family: str, variant: int, host: str) -> list:
        from repro.web.scripts import BenignWasmBehavior

        wasm_url = f"https://{host}/static/{family}-v{variant}.wasm"
        if wasm_url not in self._urls:
            self.web.register(
                wasm_url,
                Resource(
                    content=self.corpus.build(ModuleBlueprint(family, variant)),
                    content_type="application/wasm",
                ),
            )
            self._urls[wasm_url] = variant
        js_url = f"https://{host}/static/{family}-loader.js"
        if js_url not in self._urls:
            self.web.register(js_url, Resource(content=b"/*loader*/", content_type="text/javascript"))
            self._urls[js_url] = -1
        return [
            ScriptTag(src=js_url),
            ScriptTag(
                inline=f"loadRuntime('{family}-v{variant}@{host}');",
                behavior=BenignWasmBehavior(wasm_url=wasm_url),
            ),
        ]
