"""One-call reproduction runner.

``run_reproduction()`` executes every experiment at a configurable scale
and assembles a single markdown report with all regenerated tables — the
programmatic equivalent of running the whole benchmark suite, for use
from scripts, notebooks, or ``repro-mining reproduce``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.economics import EconomicsReport, user_count_bracket
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.analysis.parallel import (
    ParallelConfig,
    PopulationRecipe,
    ShardedChromeCampaign,
    ShardedZgrabCampaign,
)
from repro.analysis.reporting import render_day_hour_heatmap, render_table
from repro.analysis.shortlink import ShortLinkStudy
from repro.core import fastpath
from repro.core.pool_association import BlockAttributor
from repro.faults.ledger import FaultLedger
from repro.graph.build import add_verdict
from repro.graph.model import Graph
from repro.obs.clock import get_clock
from repro.obs.evidence import VerdictRecord
from repro.obs.heartbeat import ProgressReporter
from repro.obs.ledger import RunManifest, write_run
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_OBS, PROFILE_HEADER, make_obs, profile_rows
from repro.faults.plan import build_fault_plan
from repro.faults.resilience import ResiliencePolicy
from repro.internet.population import build_population
from repro.internet.shortlinks import build_shortlink_population
from repro.sim.clock import utc_timestamp


@dataclass
class ReproductionConfig:
    """Scales for one full reproduction run.

    The defaults favour a quick run (a couple of minutes); the benchmark
    suite is the full-calibration reference. ``crawl_workers > 1`` (or
    ``crawl_shards > 1``) routes the crawl campaigns through the sharded
    parallel executor; the merged results are identical to the sequential
    path, only faster.
    """

    seed: int = 2018
    crawl_scale: float = 0.25
    shortlink_scale: float = 0.004
    shortlink_samples: int = 100
    network_days: int = 28
    datasets: tuple[str, ...] = ("alexa", "com", "net", "org")
    crawl_shards: int = 1
    crawl_workers: int = 1
    crawl_executor: str = "thread"
    #: fault-injection profile for the crawls ("" = no chaos plane);
    #: implies the sharded executor (which carries the fault ledger)
    fault_profile: str = ""
    #: checkpoint-journal directory for the crawls (also implies sharded)
    checkpoint_dir: Optional[str] = None
    #: write the campaign trace (span JSONL) here after the run
    trace_out: Optional[str] = None
    #: append a per-stage latency table to the report
    profile: bool = False
    #: persist run artifacts (manifest/metrics/trace/profile/ledger) here;
    #: implies observability and the sharded executor
    run_dir: Optional[str] = None
    #: emit live progress snapshots every N seconds (0 = off)
    heartbeat: float = 0.0
    #: record windowed per-tick telemetry every N seconds into the run
    #: dir's ``timeseries.jsonl`` (0 = off; implies observability and the
    #: sharded executor, whose progress hooks poll the recorder)
    timeseries_interval: float = 0.0
    #: stream index-addressable populations of this size instead of
    #: materializing ``crawl_scale`` builds (zgrab plane only; Chrome and
    #: its tables are skipped). Implies the sharded executor.
    population_size: int = 0
    #: custom rank strata for streaming runs (``parse_strata`` syntax;
    #: "" = the dataset's calibrated default buckets)
    strata: str = ""
    #: scan only K sampled ranks per stratum (0 = the full population)
    sample_per_stratum: int = 0
    #: batched detection hot paths (repro.core.fastpath); False selects
    #: the rule-by-rule reference paths — verdicts are identical either way
    fastpath: bool = True


@dataclass
class ReproductionReport:
    """Collected results plus the rendered markdown."""

    config: ReproductionConfig
    sections: dict[str, str] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def to_markdown(self) -> str:
        lines = [
            "# Reproduction report — Digging into Browser-based Crypto Mining",
            "",
            f"seed={self.config.seed} crawl_scale={self.config.crawl_scale} "
            f"shortlink_scale={self.config.shortlink_scale} "
            f"network_days={self.config.network_days}",
            f"completed in {self.elapsed_seconds:.1f}s",
        ]
        for title, body in self.sections.items():
            lines += ["", f"## {title}", "", "```", body, "```"]
        return "\n".join(lines) + "\n"


def run_reproduction(config: Optional[ReproductionConfig] = None, log=print) -> ReproductionReport:
    """Run every experiment; returns the assembled report."""
    config = config if config is not None else ReproductionConfig()
    fastpath.set_enabled(config.fastpath)
    report = ReproductionReport(config=config)
    observe = (
        bool(config.trace_out)
        or config.profile
        or config.run_dir is not None
        or config.timeseries_interval > 0
    )
    obs = make_obs(prefix="repro") if observe else NULL_OBS
    progress = ProgressReporter(config.heartbeat) if config.heartbeat > 0 else None
    recorder = None
    if config.timeseries_interval > 0:
        from repro.obs.timeseries import RecorderProgress, TimeSeriesRecorder

        # origin anchored at the current obs-clock reading: tick times are
        # relative, and a PerfClock's absolute value is arbitrary
        recorder = TimeSeriesRecorder(
            registry=obs.registry,
            interval=config.timeseries_interval,
            origin=get_clock().now(),
        )
        progress = RecorderProgress(recorder, progress)
    clock = get_clock()
    started = clock.now()

    # ---- Figure 2 + Tables 1-3 ------------------------------------------------
    fault_plan = (
        build_fault_plan(config.fault_profile, seed=config.seed)
        if config.fault_profile
        else None
    )
    # chaos and checkpointing ride on the sharded executor (which carries
    # the per-shard fault ledgers), even with a single serial shard
    # a run dir and heartbeats also imply it: the persisted metrics carry
    # the shard plane, and the reporter hooks the executor's site loop
    streaming = config.population_size > 0
    parallel_crawl = (
        streaming
        or config.crawl_shards > 1
        or config.crawl_workers > 1
        or fault_plan is not None
        or config.checkpoint_dir is not None
        or config.run_dir is not None
        or progress is not None
    )
    parallel_config = ParallelConfig(
        shards=max(config.crawl_shards, config.crawl_workers),
        workers=config.crawl_workers,
        mode=config.crawl_executor,
        resilience=ResiliencePolicy() if fault_plan is not None else None,
        checkpoint_dir=config.checkpoint_dir,
    )
    chrome_rows = []
    fig2_rows = []
    stratum_rows = []
    fault_ledger = FaultLedger()
    verdicts: list = []  # populated only on observed runs (campaigns gate)
    run_graph = Graph()  # attribution graph; stays empty on unobserved runs
    for dataset in config.datasets:
        if streaming:
            from repro.internet.population import DATASETS
            from repro.internet.streaming import StreamingPopulation, parse_strata

            log(f"[crawl] {dataset} @ streaming population {config.population_size}")
            strata = (
                parse_strata(config.strata, DATASETS[dataset])
                if config.strata
                else None
            )
            population = StreamingPopulation(
                dataset,
                seed=config.seed,
                size=config.population_size,
                strata=strata,
                sample_per_stratum=config.sample_per_stratum,
            )
        else:
            log(f"[crawl] {dataset} @ scale {config.crawl_scale}")
            population = build_population(dataset, seed=config.seed, scale=config.crawl_scale)
        if fault_plan is not None:
            population.attach_fault_plan(fault_plan)
        if parallel_crawl:
            zgrab = ShardedZgrabCampaign(
                population=population, config=parallel_config, obs=obs, progress=progress
            )
            zgrab_scans = []
            for scan_index in (0, 1):  # metrics hold the most recent scan only
                zgrab_scans.append(zgrab.scan(scan_index))
                if zgrab.metrics is not None:
                    fault_ledger.merge(zgrab.metrics.fault_ledger)
        else:
            with obs.span("campaign", kind="zgrab", mode="sequential", dataset=dataset):
                zgrab_scans = ZgrabCampaign(population=population, obs=obs).both_scans()
        for scan_index, scan in enumerate(zgrab_scans):
            verdicts.extend(scan.verdicts)
            if scan.graph is not None:
                run_graph.merge(scan.graph)
            fig2_rows.append(
                [dataset, scan.scan_date, scan.nocoin_domains, f"{scan.prevalence:.4%}"]
            )
            # campaign-level summary counters: schedule-independent, so
            # persisted runs diff on them (and CI can gate on ratios)
            prefix = f"crawl.{dataset}.zgrab{scan_index}"
            obs.inc(f"{prefix}.domains_probed", scan.domains_probed)
            obs.inc(f"{prefix}.nocoin_domains", scan.nocoin_domains)
            obs.inc(f"{prefix}.fetch_failures", scan.fetch_failures)
            for row in scan.stratum_rows:
                stratum_rows.append(
                    [dataset, scan_index, row.stratum, row.probed, row.hits,
                     f"{row.prevalence:.4%}", row.population_size,
                     row.estimated_domains]
                )
        if streaming:
            if population.spec.chrome_crawl:
                log(f"[crawl] {dataset}: chrome plane skipped (streaming run)")
            continue
        if population.spec.chrome_crawl:
            if parallel_crawl:
                chrome = ShardedChromeCampaign(
                    population=population,
                    recipe=PopulationRecipe(
                        dataset,
                        seed=config.seed,
                        scale=config.crawl_scale,
                        fault_profile=config.fault_profile,
                    ),
                    config=parallel_config,
                    obs=obs,
                    progress=progress,
                )
                result = chrome.run()
                if chrome.metrics is not None:
                    fault_ledger.merge(chrome.metrics.fault_ledger)
            else:
                with obs.span("campaign", kind="chrome", mode="sequential", dataset=dataset):
                    result = ChromeCampaign(population=population, obs=obs).run()
            verdicts.extend(result.verdicts)
            if result.graph is not None:
                run_graph.merge(result.graph)
            tab = result.cross_tab
            top = ", ".join(f"{f}:{c}" for f, c in result.signature_counts.most_common(3))
            chrome_rows.append(
                [dataset, tab.wasm_miner_hits, tab.nocoin_hits,
                 f"{tab.missed_fraction:.0%}", f"{tab.detection_factor:.1f}x", top]
            )
            obs.inc(f"crawl.{dataset}.chrome.wasm_miners", tab.wasm_miner_hits)
            obs.inc(f"crawl.{dataset}.chrome.nocoin_hits", tab.nocoin_hits)
    report.sections["Figure 2 — NoCoin prevalence"] = render_table(
        ["dataset", "scan", "NoCoin domains", "prevalence"], fig2_rows
    )
    report.sections["Tables 1–2 — Chrome crawls"] = render_table(
        ["dataset", "Wasm miners", "NoCoin hits", "missed", "factor", "top families"],
        chrome_rows,
    )
    if stratum_rows:
        report.sections["Per-stratum prevalence"] = render_table(
            ["dataset", "scan", "stratum", "probed", "hits", "prevalence",
             "stratum size", "est. domains"],
            stratum_rows,
        )
    chaos_active = fault_plan is not None or config.checkpoint_dir is not None
    if chaos_active and fault_ledger.has_events():
        report.sections["Fault ledger"] = (
            render_table(FaultLedger.SUMMARY_HEADER, fault_ledger.summary_rows())
            + "\n"
            + fault_ledger.status_line()
        )

    # ---- Figures 3-4 + Tables 4-5 ------------------------------------------------
    log(f"[shortlinks] scale {config.shortlink_scale}")
    with obs.span("shortlinks", scale=config.shortlink_scale):
        population = build_shortlink_population(seed=config.seed, scale=config.shortlink_scale)
        study = ShortLinkStudy(population=population, sample_per_top_user=config.shortlink_samples)
        ranks = study.links_per_token()
        hashes = study.hash_requirements()
        destinations = study.destinations()
    report.sections["Figures 3–4 — short links"] = render_table(
        ["quantity", "value"],
        [
            ["links / tokens", f"{ranks.total_links} / {len(ranks.counts_by_rank)}"],
            ["top-1 / top-10 share", f"{ranks.top1_share:.1%} / {ranks.topn_share(10):.1%}"],
            ["≤1024 hashes (unbiased)", f"{hashes.share_resolvable_within(1024):.0%}"],
            ["max hashes", max(hashes.all_links)],
        ],
    )
    report.sections["Tables 4–5 — destinations"] = render_table(
        ["destination", "count"], destinations.top_user_domains.most_common(8)
    ) + "\n\n" + render_table(
        ["category", "count"], destinations.unbiased_categories.most_common(8)
    )

    # ---- Figure 5 + Table 6 ----------------------------------------------------------
    log(f"[network] {config.network_days} days")
    start = utc_timestamp(2018, 4, 26)
    with obs.span("network-sim", days=config.network_days):
        observation = simulate_network(
            NetworkSimConfig(seed=config.seed, start=start, end=start + config.network_days * 86400)
        )
    if obs.enabled:
        # block verdicts: each attribution cites its Merkle-root proof
        explained = BlockAttributor(chain=observation.chain).attribute_explained(
            observation.clusters
        )
        obs.inc("detector.pool.blocks_attributed", len(explained))
        for block, evidence in explained:
            record = VerdictRecord(
                subject=f"block-{block.height}",
                dataset="network",
                pipeline="pool",
                kind="block",
                is_miner=True,
                family="coinhive",
                method="pool-association",
                confidence=1.0,
                evidence=(evidence,),
            )
            verdicts.append(record)
            add_verdict(run_graph, record)
    economics = EconomicsReport.from_attributed(observation.attributed)
    median_difficulty = observation.chain.median_difficulty(last=5000)
    pool_rate = observation.overall_share() * median_difficulty / 120
    high, low = user_count_bracket(max(pool_rate, 1.0))
    report.sections["Figure 5 — blocks over time"] = render_day_hour_heatmap(
        observation.day_hour_matrix()
    )
    report.sections["Table 6 — economics"] = render_table(
        ["quantity", "value"],
        [
            ["blocks attributed", len(observation.attributed)],
            ["share of all blocks", f"{observation.overall_share():.2%}"],
            ["attribution recall", f"{observation.attribution_recall():.1%}"],
            ["pool hash rate", f"{pool_rate / 1e6:.1f} MH/s"],
            ["users @20–100 H/s", f"{low:,.0f}–{high:,.0f}"],
            ["XMR mined", f"{economics.xmr_mined:.0f}"],
            ["USD @120/XMR", f"{economics.gross_usd:,.0f}"],
        ],
    )

    if recorder is not None:
        recorder.finish(get_clock().now())
    if config.profile:
        rows = profile_rows(obs.registry)
        report.sections["Stage profile"] = (
            render_table(PROFILE_HEADER, rows) if rows else "(no stages recorded)"
        )
    if config.trace_out:
        obs.tracer.write_jsonl(config.trace_out)
        log(f"[trace] {len(obs.tracer.spans)} spans -> {config.trace_out}")
    if config.run_dir is not None:
        manifest = RunManifest.build(
            "reproduce",
            {
                "seed": config.seed,
                "crawl_scale": config.crawl_scale,
                "shortlink_scale": config.shortlink_scale,
                "shortlink_samples": config.shortlink_samples,
                "network_days": config.network_days,
                "datasets": ",".join(config.datasets),
                "shards": config.crawl_shards,
                "workers": config.crawl_workers,
                "executor": config.crawl_executor,
                "fault_profile": config.fault_profile,
                "heartbeat": config.heartbeat,
                "timeseries_interval": config.timeseries_interval,
                "population_size": config.population_size,
                "strata": config.strata,
                "sample_per_stratum": config.sample_per_stratum,
                "fastpath": config.fastpath,
            },
        )
        registry = MetricsRegistry()
        registry.merge(obs.registry)
        registry.merge(fault_ledger.as_registry())
        write_run(
            config.run_dir, manifest, registry, obs.tracer.spans, fault_ledger,
            verdicts=verdicts,
            timeseries=recorder.timeseries() if recorder is not None else None,
            graph=run_graph if run_graph else None,
        )
        log(f"[run] artifacts ({manifest.run_id}) -> {config.run_dir}")

    report.elapsed_seconds = clock.now() - started
    return report
