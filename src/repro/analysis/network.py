"""The network observation (Section 4.2: Figure 5 and Table 6).

Simulates the Monero network over calendar months with the Coinhive pool
contributing its measured ~1.18% share, then applies the paper's
pool-association method to attribute blocks:

- block arrivals form a Poisson process at the 120 s target, so difficulty
  (retargeted from the simulated timestamps) hovers around its initial
  value with realistic wander,
- every block is built from a real pool template (coinbase with extra
  nonce + mempool transactions) and appended to a real chain,
- when the Coinhive pool wins a block, the observer has seen the winning
  PoW input beforehand — unless the observer or the service was down
  (the paper's infrastructure outages and the 6–7 May Coinhive
  disruption) — reproducing the method's lower-bound character.

Fidelity note (DESIGN.md): the 500 ms polling loop is validated separately
at full rate in ``bench_text_pow_inputs``; over month-long horizons the
observer's *coverage* (which Merkle roots it saw per block) is what matters
for attribution, and that is what this simulation models.
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.chain import Blockchain, Mempool, MONEY_SUPPLY, EMISSION_SPEED_FACTOR
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.blockchain.transactions import ATOMIC_PER_XMR, TransferFactory
from repro.core.pool_association import AttributedBlock, BlockAttributor, NetworkEstimator
from repro.internet.distributions import DiurnalModel, paper_holiday_calendar
from repro.pool.jobs import build_template
from repro.sim.clock import utc_timestamp
from repro.sim.rng import RngStream


@dataclass
class NetworkSimConfig:
    """Knobs of the month-scale simulation."""

    seed: int = 2018
    start: float = utc_timestamp(2018, 4, 26)
    end: float = utc_timestamp(2018, 8, 1)
    block_target: float = 120.0
    initial_difficulty: int = 55_400_000_000
    initial_reward_xmr: float = 4.55
    coinhive_share: float = 0.0118
    #: month → share multiplier (user-base growth; June was Coinhive's best)
    monthly_share_factor: dict[int, float] = field(
        default_factory=lambda: {4: 1.00, 5: 1.04, 6: 1.10, 7: 1.09}
    )
    #: slow network hash-rate growth: block times shrink by this factor/day,
    #: which the retargeter converts into rising difficulty
    hashrate_drift_per_day: float = 0.0008
    #: probability the observer misses the winning PoW input despite being up
    observer_miss_rate: float = 0.02
    coinhive_outages: tuple[tuple[float, float], ...] = (
        (utc_timestamp(2018, 5, 6, 6), utc_timestamp(2018, 5, 7, 18)),
    )
    observer_outages: tuple[tuple[float, float], ...] = (
        (utc_timestamp(2018, 4, 28, 10), utc_timestamp(2018, 4, 28, 20)),
        (utc_timestamp(2018, 5, 15, 0), utc_timestamp(2018, 5, 15, 8)),
    )
    #: retarget window (smaller than mainnet's 720 to keep Python fast;
    #: the relative difficulty wander is comparable)
    difficulty_window: int = 72
    difficulty_cut: int = 6
    txs_per_block_max: int = 4


@dataclass
class NetworkObservation:
    """Simulation output plus attribution results."""

    config: NetworkSimConfig
    chain: Blockchain
    attributed: list  # of attributed Block objects, by height
    coinhive_truth_heights: set[int]
    clusters_observed: int
    #: prev block id → merkle roots seen for it (kept for evidence: the
    #: attribution proof can be re-derived and cited per block)
    clusters: dict = field(default_factory=dict)

    # -- Figure 5 -----------------------------------------------------------------

    def day_hour_matrix(self) -> dict[tuple[str, int], int]:
        """(date, hour) → attributed block count."""
        matrix: Counter = Counter()
        for block in self.attributed:
            dt = _dt.datetime.fromtimestamp(block.timestamp, tz=_dt.timezone.utc)
            matrix[(dt.date().isoformat(), dt.hour)] += 1
        return dict(matrix)

    def blocks_per_day(self) -> dict[str, int]:
        per_day: Counter = Counter()
        for block in self.attributed:
            dt = _dt.datetime.fromtimestamp(block.timestamp, tz=_dt.timezone.utc)
            per_day[dt.date().isoformat()] += 1
        return dict(per_day)

    def hourly_totals(self) -> list:
        totals = [0] * 24
        for block in self.attributed:
            dt = _dt.datetime.fromtimestamp(block.timestamp, tz=_dt.timezone.utc)
            totals[dt.hour] += 1
        return totals

    # -- Table 6 -------------------------------------------------------------------

    def monthly_stats(self, months=((2018, 5), (2018, 6), (2018, 7))) -> list:
        """Rows of Table 6: median/avg blocks per day, hash rate, XMR."""
        estimator = NetworkEstimator(block_target_seconds=int(self.config.block_target))
        per_day = self.blocks_per_day()
        rows = []
        for year, month in months:
            days = _days_in_month(year, month)
            day_keys = [f"{year:04d}-{month:02d}-{d:02d}" for d in range(1, days + 1)]
            counts = sorted(per_day.get(k, 0) for k in day_keys)
            median = counts[len(counts) // 2] if counts else 0
            average = sum(counts) / len(counts) if counts else 0.0
            difficulty = self._median_difficulty_in(year, month)
            pool_rate = estimator.pool_hashrate(average, difficulty)
            xmr = sum(
                b.reward_atomic for b in self.attributed
                if _month_of(b.timestamp) == (year, month)
            ) / ATOMIC_PER_XMR
            rows.append(
                {
                    "month": f"{year:04d}-{month:02d}",
                    "median_blocks_per_day": float(median),
                    "avg_blocks_per_day": average,
                    "pool_hashrate_mhs": pool_rate / 1e6,
                    "network_hashrate_mhs": estimator.network_hashrate(difficulty) / 1e6,
                    "xmr": xmr,
                    "share": estimator.pool_share(average),
                }
            )
        return rows

    def overall_share(self) -> float:
        observed_window = self.config.end - self.config.start
        days = observed_window / 86400
        return (len(self.attributed) / days) / (86400 / self.config.block_target)

    def attribution_recall(self) -> float:
        """Fraction of truly Coinhive-mined blocks the method attributed."""
        if not self.coinhive_truth_heights:
            return 0.0
        attributed_heights = {b.height for b in self.attributed}
        return len(attributed_heights & self.coinhive_truth_heights) / len(
            self.coinhive_truth_heights
        )

    def _median_difficulty_in(self, year: int, month: int) -> int:
        diffs = []
        chain = self.chain
        for height in range(1, chain.height + 1):
            ts = chain.blocks[height].header.timestamp
            if _month_of(ts) == (year, month):
                diffs.append(
                    chain._cumulative_difficulty[height] - chain._cumulative_difficulty[height - 1]
                )
        if not diffs:
            return self.config.initial_difficulty
        diffs.sort()
        return diffs[len(diffs) // 2]


def _month_of(unix_ts: float) -> tuple:
    dt = _dt.datetime.fromtimestamp(unix_ts, tz=_dt.timezone.utc)
    return (dt.year, dt.month)


def _days_in_month(year: int, month: int) -> int:
    import calendar

    return calendar.monthrange(year, month)[1]


def simulate_network(config: Optional[NetworkSimConfig] = None) -> NetworkObservation:
    """Run the simulation and the pool-association attribution."""
    config = config if config is not None else NetworkSimConfig()
    rng = RngStream(config.seed, "network")
    arrival_rng = rng.substream("arrivals")
    choice_rng = rng.substream("choices")
    tx_factory = TransferFactory(rng=rng.substream("txs"))

    chain = Blockchain(
        pow_params=FAST_PARAMS,
        adjuster=DifficultyAdjuster(
            window=config.difficulty_window,
            cut=config.difficulty_cut,
            initial_difficulty=config.initial_difficulty,
        ),
        genesis_timestamp=int(config.start) - int(config.block_target),
        generated_atomic=MONEY_SUPPLY
        - (int(config.initial_reward_xmr * ATOMIC_PER_XMR) << EMISSION_SPEED_FACTOR),
    )
    mempool = Mempool()
    diurnal = DiurnalModel(holidays=paper_holiday_calendar(), outages=list(config.coinhive_outages))

    clusters: dict[bytes, set] = {}  # prev block id → merkle roots seen for it
    truth_heights: set[int] = set()
    now = config.start
    extra_counter = 0
    #: the network's aggregate hash rate; block arrivals respond to the
    #: current difficulty through it, closing the retargeting feedback loop
    base_hashrate = config.initial_difficulty / config.block_target

    while True:
        hashrate = base_hashrate * (
            1.0 + config.hashrate_drift_per_day * (now - config.start) / 86400
        )
        mean_dt = chain.current_difficulty() / hashrate
        now += arrival_rng.expovariate(1.0 / mean_dt)
        if now >= config.end:
            break
        for _ in range(choice_rng.randint(0, config.txs_per_block_max)):
            mempool.add(tx_factory.make())

        month = _month_of(now)[1]
        share = config.coinhive_share * config.monthly_share_factor.get(month, 1.0)
        activity = diurnal.factor(now)  # 0 during Coinhive outages
        p_coinhive = min(1.0, share * activity)
        coinhive_wins = choice_rng.random() < p_coinhive

        extra_counter += 1
        if coinhive_wins:
            miner, extra = "coinhive", b"ch/" + extra_counter.to_bytes(6, "little")
        else:
            pool_index = choice_rng.randint(0, 11)
            miner, extra = f"pool-{pool_index}", b"px/" + extra_counter.to_bytes(6, "little")

        template = build_template(chain, miner, extra, timestamp=now, mempool=mempool, max_txs=8)
        observer_up = not any(s <= now < e for s, e in config.observer_outages)
        if coinhive_wins and observer_up and choice_rng.random() >= config.observer_miss_rate:
            clusters.setdefault(template.header.prev_id, set()).add(template.merkle_root())
        block = template.to_block(nonce=choice_rng.getrandbits(32))
        chain.force_append(block)
        mempool.remove_included(block)
        if coinhive_wins:
            truth_heights.add(chain.height)

    attributor = BlockAttributor(chain=chain)
    attributed = attributor.attribute(clusters)
    return NetworkObservation(
        config=config,
        chain=chain,
        attributed=attributed,
        coinhive_truth_heights=truth_heights,
        clusters_observed=len(clusters),
        clusters=clusters,
    )
