"""The short-link study (Section 4.1).

Reproduces, against a :class:`~repro.internet.shortlinks.ShortLinkPopulation`:

- **Figure 3** — links-per-token distribution (rank curve + CDF),
- **Figure 4** — required-hash distribution, with and without the
  heavy-user bias, plus the duration axis at 20 H/s,
- **Table 4** — top destination domains of the top-10 creators (resolved
  by actually computing hashes through the resolver),
- **Table 5** — RuleSpace categories of the unbiased <10K-hash dataset.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.coinhive.resolver import LinkResolver, duration_seconds
from repro.coinhive.service import CoinhiveService
from repro.internet.shortlinks import ShortLinkPopulation
from repro.rulespace.engine import RuleSpaceEngine
from repro.sim.rng import RngStream


@dataclass
class LinksPerTokenResult:
    """Figure 3's data: link counts by token rank."""

    counts_by_rank: list[int]  # descending link counts
    total_links: int

    @property
    def top1_share(self) -> float:
        return self.counts_by_rank[0] / self.total_links if self.total_links else 0.0

    def topn_share(self, n: int = 10) -> float:
        return sum(self.counts_by_rank[:n]) / self.total_links if self.total_links else 0.0

    def cdf_points(self) -> list[tuple[int, float]]:
        """(rank, cumulative share) pairs."""
        out = []
        acc = 0
        for rank, count in enumerate(self.counts_by_rank, start=1):
            acc += count
            out.append((rank, acc / self.total_links))
        return out


@dataclass
class HashRequirementResult:
    """Figure 4's data: hash requirements, biased and unbiased."""

    all_links: list[int]           # required hashes, one per link
    user_bias_removed: list[int]   # one per (user, required-hash value)

    def share_resolvable_within(self, max_hashes: int, unbiased: bool = True) -> float:
        data = self.user_bias_removed if unbiased else self.all_links
        if not data:
            return 0.0
        return sum(1 for v in data if v <= max_hashes) / len(data)

    def histogram(self, unbiased: bool = False) -> Counter:
        data = self.user_bias_removed if unbiased else self.all_links
        return Counter(data)

    @staticmethod
    def duration_at_20hps(hashes: int) -> float:
        return duration_seconds(hashes, 20.0)


@dataclass
class DestinationResult:
    """Tables 4 and 5."""

    top_user_domains: Counter      # destination domain → sampled count
    top_user_sample_size: int
    unbiased_categories: Counter   # category → count (multi-label)
    unbiased_urls: int
    unbiased_unclassified: int
    hashes_computed: int


@dataclass
class ShortLinkStudy:
    """Runs the full Section 4.1 analysis."""

    population: ShortLinkPopulation
    coinhive: Optional[CoinhiveService] = None
    rulespace: RuleSpaceEngine = field(default_factory=RuleSpaceEngine)
    resolver: Optional[LinkResolver] = None
    sample_per_top_user: int = 1000
    unbiased_hash_cutoff: int = 10_000

    def __post_init__(self) -> None:
        if self.resolver is None:
            self.resolver = LinkResolver(
                shortlinks=self.population.service, coinhive=self.coinhive
            )

    # -- Figure 3 -------------------------------------------------------------

    def links_per_token(self) -> LinksPerTokenResult:
        counts = sorted(self.population.links_per_token().values(), reverse=True)
        return LinksPerTokenResult(counts_by_rank=counts, total_links=sum(counts))

    # -- Figure 4 -------------------------------------------------------------

    def hash_requirements(self) -> HashRequirementResult:
        all_links = [link.required_hashes for link in self.population.service.links]
        per_user_values: set[tuple[str, int]] = set()
        for link in self.population.service.links:
            per_user_values.add((link.token, link.required_hashes))
        return HashRequirementResult(
            all_links=all_links,
            user_bias_removed=[value for _token, value in per_user_values],
        )

    # -- Tables 4 and 5 ----------------------------------------------------------

    def destinations(self, seed: int = 7) -> DestinationResult:
        """Resolve samples and categorize destinations.

        Top-10 users: a random sample of up to ``sample_per_top_user``
        links each. Unbiased set: every link under the hash cutoff, one
        per (user, hash-value) pair — the paper's bias removal.
        """
        rng = RngStream(seed, "shortlink-study")
        service = self.population.service
        # keep the ranked order for iteration: sampling consumes the RNG per
        # token, so iterating the *set* would tie the draws to the process
        # hash seed and break cross-run determinism
        ranked_top = self.population.top_tokens(10)
        top_tokens = set(ranked_top)

        by_token: dict[str, list] = {}
        for link in service.links:
            by_token.setdefault(link.token, []).append(link)

        top_domains: Counter = Counter()
        top_sample = 0
        for token in ranked_top:
            links = by_token.get(token, [])
            sample = links if len(links) <= self.sample_per_top_user else rng.sample(
                links, self.sample_per_top_user
            )
            for link in sample:
                resolved = self.resolver.resolve(link.link_id)
                top_domains[_domain_of(resolved.target_url)] += 1
                top_sample += 1

        # unbiased: dedup per (token, required) and cap at the cutoff
        seen: set[tuple[str, int]] = set()
        unbiased_cats: Counter = Counter()
        unbiased_urls = 0
        unclassified = 0
        for link in service.links:
            if link.token in top_tokens:
                continue
            key = (link.token, link.required_hashes)
            if key in seen or link.required_hashes >= self.unbiased_hash_cutoff:
                continue
            seen.add(key)
            resolved = self.resolver.resolve(link.link_id)
            unbiased_urls += 1
            labels = self.rulespace.classify_url(resolved.target_url)
            if labels:
                unbiased_cats.update(labels)
            else:
                unclassified += 1

        return DestinationResult(
            top_user_domains=top_domains,
            top_user_sample_size=top_sample,
            unbiased_categories=unbiased_cats,
            unbiased_urls=unbiased_urls,
            unbiased_unclassified=unclassified,
            hashes_computed=self.resolver.total_hashes_computed,
        )


def _domain_of(url: str) -> str:
    host = url.split("://", 1)[-1].split("/", 1)[0]
    return host[4:] if host.startswith("www.") else host
