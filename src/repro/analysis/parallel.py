"""Sharded parallel campaign execution.

The paper's scans cover 138M domains with zgrab and ~3.2M with instrumented
Chrome — scale that a single-threaded loop over ``population.sites`` never
reaches. This module partitions a :class:`~repro.internet.population.WebPopulation`
into deterministic shards (stable hash of the domain → shard id), runs the
campaign's per-site pipeline on each shard via a ``concurrent.futures``
pool, and merges the per-shard partial results into output **identical to
the sequential path**:

- shard membership depends only on the domain string (stable across runs,
  processes, and site orderings),
- the per-site work in :class:`~repro.analysis.crawl.ZgrabCampaign` /
  :class:`~repro.analysis.crawl.ChromeCampaign` is site-independent and
  keyed by URL-scoped RNG streams, so grouping does not change outcomes,
- partials merge in shard-id order and every tally is a plain sum, so the
  finalized result does not depend on worker count or completion order.

Execution modes:

- ``serial``  — run shards in the calling thread (debugging, baselines),
- ``thread``  — ``ThreadPoolExecutor``; zero-copy sharing of the population,
- ``process`` — ``ProcessPoolExecutor`` with the ``fork`` start method; the
  population is inherited copy-on-write, giving each worker an isolated
  view with no pickling of the web registry.

Every shard is wrapped in retry-with-exponential-backoff (the shared
:class:`repro.faults.resilience.RetryPolicy` — re-exported here for
backward compatibility); a shard that exhausts its retries is recorded in
the metrics (``error`` set) and skipped instead of killing the whole
campaign. With ``checkpoint_dir`` set, every shard journals per-site
outcomes so a killed run resumes without repeating (or re-randomizing)
completed work.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.crawl import (
    ChromeCampaign,
    ChromeCampaignResult,
    ChromeRunPartial,
    ZgrabCampaign,
    ZgrabScanPartial,
    ZgrabScanResult,
)
from repro.analysis.metrics import CampaignMetrics, ShardMetrics
from repro.core.detector import PageDetector
from repro.core.signatures import build_reference_database
from repro.faults.checkpoint import shard_journal
from repro.faults.plan import build_fault_plan
from repro.faults.resilience import ResiliencePolicy, RetryPolicy, run_with_retry
from repro.internet.population import SiteSpec, WebPopulation, build_population
from repro.obs.clock import get_clock
from repro.obs.profile import NULL_OBS, Obs, make_obs
from repro.rulespace.engine import RuleSpaceEngine
from repro.web.browser import BrowserConfig

EXECUTOR_MODES = ("serial", "thread", "process")

__all__ = [
    "EXECUTOR_MODES",
    "ParallelConfig",
    "PopulationRecipe",
    "RetryPolicy",
    "ShardedChromeCampaign",
    "ShardedZgrabCampaign",
    "partition_indices",
    "run_with_retry",
    "stable_shard",
]


# ---------------------------------------------------------------------------
# sharding


def stable_shard(domain: str, num_shards: int) -> int:
    """Deterministic shard id for a domain.

    SHA-256 based, so the assignment is stable across Python versions,
    processes, and hash randomization — resumable pipelines depend on a
    domain always landing in the same shard.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    digest = hashlib.sha256(domain.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def partition_indices(sites: list[SiteSpec], num_shards: int) -> list[list[int]]:
    """Population indices per shard, by stable hash of each site's domain."""
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    for index, site in enumerate(sites):
        shards[stable_shard(site.domain, num_shards)].append(index)
    return shards


# ---------------------------------------------------------------------------
# configuration
#
# (Shard retry used to be implemented here; it now lives in
# repro.faults.resilience, shared with the zgrab fetcher and the pool
# observer. RetryPolicy/run_with_retry stay importable from this module.)


@dataclass(frozen=True)
class ParallelConfig:
    """How a sharded campaign executes."""

    shards: int = 4
    workers: int = 4
    mode: str = "thread"  # serial | thread | process
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: False: a shard that exhausts retries is dropped (recorded in the
    #: metrics); True: the campaign raises instead.
    fail_fast: bool = False
    #: per-domain retry/breaker/deadline policy handed to the campaign's
    #: fetchers; ``None`` keeps the legacy single-attempt fetch
    resilience: Optional[ResiliencePolicy] = None
    #: directory for per-shard checkpoint journals; ``None`` disables
    #: checkpoint/resume
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode not in EXECUTOR_MODES:
            raise ValueError(f"mode must be one of {EXECUTOR_MODES}, got {self.mode!r}")


@dataclass(frozen=True)
class PopulationRecipe:
    """Enough to rebuild a population deterministically in any worker.

    Builds are pure functions of ``(dataset, seed, scale, fault_profile)``,
    so a worker reconstructing its own copy sees byte-identical sites —
    this is how thread-mode Chrome workers get mutation-isolated Coinhive
    services without pickling anything. ``fault_profile`` rides along so a
    rebuilt population reattaches the same seeded fault plan.
    """

    dataset: str
    seed: int = 2018
    scale: float = 1.0
    fault_profile: str = ""

    def build(self) -> WebPopulation:
        population = build_population(self.dataset, seed=self.seed, scale=self.scale)
        if self.fault_profile:
            population.attach_fault_plan(
                build_fault_plan(self.fault_profile, seed=self.seed)
            )
        return population


# ---------------------------------------------------------------------------
# worker-side state

#: Populated in the parent just before a fork-based pool spins up; forked
#: workers read their copy-on-write view of it. Not used in thread mode.
_FORK_STATE: dict = {}

#: Per-thread (and, transitively, per-process) caches for the expensive
#: worker artifacts: the reference signature database and recipe-built
#: population copies.
_WORKER_CACHE = threading.local()


def _worker_chrome_detector(signature_db_path: Optional[str] = None) -> PageDetector:
    cached = getattr(_WORKER_CACHE, "chrome_detector", None)
    if cached is None or cached[0] != signature_db_path:
        detector = PageDetector()
        if signature_db_path:
            detector.classifier.database = _load_signature_db(signature_db_path)
        else:
            detector.classifier.database = build_reference_database()
        cached = (signature_db_path, detector)
        _WORKER_CACHE.chrome_detector = cached
    # the campaign re-enables this per run when its Obs context is on; a
    # cached detector must not leak the flag into an unobserved run
    cached[1].collect_evidence = False
    return cached[1]


def _load_signature_db(path: str):
    import pathlib

    from repro.core.signatures import SignatureDatabase

    return SignatureDatabase.from_json(pathlib.Path(path).read_text())


def _worker_population(recipe: PopulationRecipe) -> WebPopulation:
    key = (recipe.dataset, recipe.seed, recipe.scale, recipe.fault_profile)
    cached = getattr(_WORKER_CACHE, "population", None)
    if cached is None or cached[0] != key:
        cached = (key, recipe.build())
        _WORKER_CACHE.population = cached
    return cached[1]


# ---------------------------------------------------------------------------
# shard work (shared by every execution mode)


def _campaign_fingerprint(*parts: object) -> str:
    """Stable digest pinning a checkpoint journal to one configuration.

    The shard's ``(population index, domain)`` assignment is included, so
    any change to dataset, seed, scale, or shard count — all of which
    reshape that list — invalidates the journal; the fault plan and
    per-site policy objects cover the rest. A mismatched journal is
    discarded and its sites re-run (see :mod:`repro.faults.checkpoint`).
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _shard_checkpoint_identity(population, indices):
    """Journal-fingerprint material for a shard's site assignment.

    Streaming populations pin ``(population identity, index bounds)`` —
    O(1) in the range length; materialized populations keep the legacy
    per-domain list, byte-compatible with journals written before
    streaming existed.
    """
    identity = getattr(population, "checkpoint_identity", None)
    if identity is not None:
        return identity(indices)
    return [(i, population.sites[i].domain) for i in indices]


def _zgrab_shard_work(
    population: WebPopulation,
    shard_id: int,
    indices: list[int],
    scan_index: int,
    resilience: Optional[ResiliencePolicy] = None,
    checkpoint_dir: Optional[str] = None,
    observe: bool = False,
    progress=None,
) -> tuple[ZgrabScanPartial, ShardMetrics]:
    # each shard traces into its own context; the id prefix is derived from
    # the dataset, scan, and shard, so the merged trace is identical across
    # executor modes and span ids stay unique when run_reproduction merges
    # several datasets' shard traces into one run directory
    obs = (
        make_obs(prefix=f"{population.spec.name}-z{scan_index}s{shard_id}")
        if observe
        else NULL_OBS
    )
    campaign = ZgrabCampaign(population=population, resilience=resilience, obs=obs)
    journal = None
    if checkpoint_dir is not None:
        # the journal name carries the dataset — run_reproduction loops
        # four datasets over one checkpoint_dir, and an unqualified name
        # would replay one dataset's outcomes into another's shards
        dataset = population.spec.name
        fingerprint_parts = [
            dataset,
            f"zgrab{scan_index}",
            shard_id,
            _shard_checkpoint_identity(population, indices),
            population.web.fault_plan,
            resilience,
        ]
        if observe:
            # observed runs journal outcomes *with* evidence chains; a
            # journal recorded unobserved has none to replay, so it must
            # be discarded rather than yield evidence-free verdicts
            fingerprint_parts.append("evidence")
        journal = shard_journal(
            checkpoint_dir,
            f"{dataset}-zgrab{scan_index}",
            shard_id,
            fingerprint=_campaign_fingerprint(*fingerprint_parts),
        )
    clock = get_clock()
    started = clock.now()
    try:
        with obs.span("shard", shard=shard_id, kind=f"zgrab{scan_index}"):
            partial = campaign.scan_sites_indexed(
                ((i, population.sites[i]) for i in indices),
                scan_index,
                journal=journal,
                progress=progress,
            )
    finally:
        if journal is not None:
            journal.close()
    wall = clock.now() - started
    metrics = ShardMetrics(
        shard_id=shard_id,
        sites=len(indices),
        wall_seconds=wall,
        domains_probed=partial.domains_probed,
        fetch_failures=partial.fetch_failures,
        detector_hits=partial.nocoin_domains,
        ledger=partial.fault_ledger,
        registry=obs.registry if observe else None,
        spans=obs.tracer.spans if observe else None,
    )
    return partial, metrics


def _chrome_shard_work(
    population: WebPopulation,
    shard_id: int,
    indices: list[int],
    browser_config: BrowserConfig,
    checkpoint_dir: Optional[str] = None,
    observe: bool = False,
    progress=None,
    signature_db_path: Optional[str] = None,
) -> tuple[ChromeRunPartial, ShardMetrics]:
    obs = make_obs(prefix=f"{population.spec.name}-cs{shard_id}") if observe else NULL_OBS
    campaign = ChromeCampaign(
        population=population,
        detector=_worker_chrome_detector(signature_db_path),
        browser_config=browser_config,
        rulespace=RuleSpaceEngine(),
        obs=obs,
    )
    journal = None
    if checkpoint_dir is not None:
        dataset = population.spec.name
        fingerprint_parts = [
            dataset,
            "chrome",
            shard_id,
            _shard_checkpoint_identity(population, indices),
            population.web.fault_plan,
            browser_config,
        ]
        if signature_db_path:
            # a different signature catalogue changes verdicts; stale
            # journals from another db must not replay into this run
            fingerprint_parts.append(signature_db_path)
        if observe:
            # same contract as the zgrab journals: only journals whose
            # outcomes carry evidence may replay into an observed run
            fingerprint_parts.append("evidence")
        journal = shard_journal(
            checkpoint_dir,
            f"{dataset}-chrome",
            shard_id,
            fingerprint=_campaign_fingerprint(*fingerprint_parts),
        )
    clock = get_clock()
    started = clock.now()
    try:
        with obs.span("shard", shard=shard_id, kind="chrome"):
            partial = campaign.run_sites(
                ((i, population.sites[i]) for i in indices),
                journal=journal,
                progress=progress,
            )
    finally:
        if journal is not None:
            journal.close()
    wall = clock.now() - started
    metrics = ShardMetrics(
        shard_id=shard_id,
        sites=len(indices),
        wall_seconds=wall,
        domains_probed=len(indices),
        fetch_failures=sum(1 for _, report in partial.reports if report.status == "error"),
        detector_hits=partial.miner_wasm_sites,
        ledger=partial.fault_ledger,
        registry=obs.registry if observe else None,
        spans=obs.tracer.spans if observe else None,
    )
    return partial, metrics


def _call_zgrab_work(
    population: WebPopulation,
    shard_id: int,
    indices: list[int],
    scan_index: int,
    resilience: Optional[ResiliencePolicy],
    checkpoint_dir: Optional[str],
    observe: bool = False,
    progress=None,
) -> tuple[ZgrabScanPartial, ShardMetrics]:
    # keep the legacy positional call when the chaos/checkpoint/obs planes
    # are off — callers (and tests) may substitute a 4-arg _zgrab_shard_work
    if resilience is None and checkpoint_dir is None and not observe and progress is None:
        return _zgrab_shard_work(population, shard_id, indices, scan_index)
    return _zgrab_shard_work(
        population, shard_id, indices, scan_index, resilience, checkpoint_dir, observe,
        progress,
    )


def _call_chrome_work(
    population: WebPopulation,
    shard_id: int,
    indices: list[int],
    browser_config: BrowserConfig,
    checkpoint_dir: Optional[str],
    observe: bool = False,
    progress=None,
    signature_db_path: Optional[str] = None,
) -> tuple[ChromeRunPartial, ShardMetrics]:
    if (
        checkpoint_dir is None
        and not observe
        and progress is None
        and signature_db_path is None
    ):
        return _chrome_shard_work(population, shard_id, indices, browser_config)
    return _chrome_shard_work(
        population, shard_id, indices, browser_config, checkpoint_dir, observe, progress,
        signature_db_path,
    )


def _zgrab_process_entry(
    shard_id: int,
    indices: list[int],
    scan_index: int,
    retry: RetryPolicy,
    resilience: Optional[ResiliencePolicy] = None,
    checkpoint_dir: Optional[str] = None,
    observe: bool = False,
) -> tuple[ZgrabScanPartial, ShardMetrics]:
    population = _FORK_STATE["population"]
    result, retries = run_with_retry(
        lambda: _call_zgrab_work(
            population, shard_id, indices, scan_index, resilience, checkpoint_dir, observe
        ),
        retry,
        key=(f"zgrab{scan_index}", f"shard{shard_id}"),
    )
    result[1].retries = retries
    return result


def _chrome_process_entry(
    shard_id: int,
    indices: list[int],
    browser_config: BrowserConfig,
    retry: RetryPolicy,
    checkpoint_dir: Optional[str] = None,
    observe: bool = False,
    signature_db_path: Optional[str] = None,
) -> tuple[ChromeRunPartial, ShardMetrics]:
    population = _FORK_STATE["population"]
    result, retries = run_with_retry(
        lambda: _call_chrome_work(
            population, shard_id, indices, browser_config, checkpoint_dir, observe,
            None, signature_db_path,
        ),
        retry,
        key=("chrome", f"shard{shard_id}"),
    )
    result[1].retries = retries
    return result


# ---------------------------------------------------------------------------
# executor core


def _fork_pool(workers: int) -> ProcessPoolExecutor:
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError(
            "process mode needs the 'fork' start method (copy-on-write "
            "population sharing); use mode='thread' on this platform"
        )
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=multiprocessing.get_context("fork")
    )


def _collect_shards(
    submit: Callable[[Executor, int], "object"],
    shard_sizes: dict[int, int],
    pool: Optional[Executor],
    config: ParallelConfig,
    progress=None,
) -> tuple[dict[int, object], list[ShardMetrics]]:
    """Run every shard, gathering partials and metrics (failures included).

    ``progress`` is only passed here in process mode, where per-site
    advances cannot cross the fork boundary — the parent advances one
    whole shard at a time as results come back.
    """
    partials: dict[int, object] = {}
    failures: list[ShardMetrics] = []
    metrics_by_shard: dict[int, ShardMetrics] = {}

    def record(shard_id: int, outcome) -> None:
        partial, shard_metrics = outcome
        partials[shard_id] = partial
        metrics_by_shard[shard_id] = shard_metrics
        if progress is not None:
            ledger = shard_metrics.ledger
            progress.advance(
                shard_sizes[shard_id],
                failed=shard_metrics.fetch_failures,
                faults=ledger.total_injected if ledger is not None else 0,
                breakers_opened=ledger.breaker_opened if ledger is not None else 0,
                breakers_closed=ledger.breaker_closed if ledger is not None else 0,
            )

    if pool is None:  # serial
        for shard_id in shard_sizes:
            try:
                record(shard_id, submit(None, shard_id))
            except Exception as exc:
                if config.fail_fast:
                    raise
                failures.append(
                    ShardMetrics(
                        shard_id=shard_id,
                        sites=shard_sizes[shard_id],
                        retries=config.retry.max_attempts - 1,
                        error=str(exc) or type(exc).__name__,
                    )
                )
    else:
        futures = {submit(pool, shard_id): shard_id for shard_id in shard_sizes}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                shard_id = futures[future]
                try:
                    record(shard_id, future.result())
                except Exception as exc:
                    if config.fail_fast:
                        for other in pending:
                            other.cancel()
                        raise
                    failures.append(
                        ShardMetrics(
                            shard_id=shard_id,
                            sites=shard_sizes[shard_id],
                            retries=config.retry.max_attempts - 1,
                            error=str(exc) or type(exc).__name__,
                        )
                    )

    all_metrics = sorted(
        list(metrics_by_shard.values()) + failures, key=lambda m: m.shard_id
    )
    return partials, all_metrics


class _ShardedCampaignBase:
    """Shared machinery: partitioning, pool lifecycle, metrics assembly."""

    population: WebPopulation
    config: ParallelConfig
    obs: Obs

    def _partition(self) -> tuple[list[list[int]], dict[int, int]]:
        # streaming populations publish their own plan (contiguous index
        # ranges, or stratified-sample chunks) so shards stay O(1)-memory
        plan = getattr(self.population, "shard_plan", None)
        if plan is not None:
            shard_indices = plan(self.config.shards)
        else:
            shard_indices = partition_indices(self.population.sites, self.config.shards)
        sizes = {shard_id: len(idx) for shard_id, idx in enumerate(shard_indices)}
        return shard_indices, sizes

    def _execute(self, submit_local, submit_process, kind: str = "campaign") -> tuple[dict[int, object], CampaignMetrics]:
        """Run all shards under the configured mode.

        ``submit_local(pool_or_none, shard_id)`` runs/submits a shard in
        serial or thread mode; ``submit_process(pool, shard_id)`` submits
        the module-level fork entry point. All wall clocks come from the
        injectable obs clock, so a ``TickClock`` makes the derived rates
        (``domains_per_sec``, ``parallel_efficiency``) reproducible.
        """
        config = self.config
        obs = self.obs
        _, sizes = self._partition()
        dataset = self.population.spec.name
        progress = getattr(self, "progress", None)
        if progress is not None:
            progress.begin(total=sum(sizes.values()), label=f"{dataset}-{kind}")
        clock = get_clock()
        started = clock.now()
        with obs.span(
            "campaign", kind=kind, mode=config.mode, shards=config.shards, dataset=dataset
        ) as campaign_span:
            if config.mode == "serial":
                partials, shard_metrics = _collect_shards(submit_local, sizes, None, config)
            elif config.mode == "thread":
                with ThreadPoolExecutor(max_workers=config.workers) as pool:
                    partials, shard_metrics = _collect_shards(submit_local, sizes, pool, config)
            else:  # process
                _FORK_STATE["population"] = self.population
                try:
                    with _fork_pool(config.workers) as pool:
                        partials, shard_metrics = _collect_shards(
                            submit_process, sizes, pool, config, progress
                        )
                finally:
                    _FORK_STATE.pop("population", None)
        wall = clock.now() - started
        if progress is not None:
            progress.finish()
        metrics = CampaignMetrics(
            shards=shard_metrics,
            wall_seconds=wall,
            mode=config.mode,
            workers=config.workers if config.mode != "serial" else 1,
        )
        if obs.enabled:
            # fold the shard-local traces/registries into the campaign
            # context: shard root spans re-root under the campaign span,
            # stage histograms merge under the single registry law
            for shard in metrics.shards:
                if shard.spans:
                    obs.tracer.adopt(shard.spans, parent_id=campaign_span.span_id)
                if shard.registry is not None:
                    obs.registry.merge(shard.registry)
        return partials, metrics


@dataclass
class ShardedZgrabCampaign(_ShardedCampaignBase):
    """Shard-parallel drop-in for :class:`ZgrabCampaign`.

    ``scan``/``both_scans`` return the same :class:`ZgrabScanResult` values
    the sequential campaign produces; ``metrics`` holds the per-shard
    measurements of the most recent scan.
    """

    population: WebPopulation
    config: ParallelConfig = field(default_factory=ParallelConfig)
    metrics: Optional[CampaignMetrics] = None
    #: observability context; shard traces and registries merge into it
    obs: Obs = field(default=NULL_OBS, repr=False)
    #: live heartbeat reporter (``--heartbeat``); ``None`` costs nothing
    progress: Optional[object] = field(default=None, repr=False)

    def scan(self, scan_index: int = 0) -> ZgrabScanResult:
        shard_indices, _ = self._partition()
        retry = self.config.retry
        resilience = self.config.resilience
        checkpoint_dir = self.config.checkpoint_dir
        observe = self.obs.enabled
        # per-site advances in serial/thread; process advances per shard
        # in the parent (see _collect_shards)
        progress = self.progress if self.config.mode != "process" else None

        def submit_local(pool, shard_id):
            def attempt():
                return _call_zgrab_work(
                    self.population,
                    shard_id,
                    shard_indices[shard_id],
                    scan_index,
                    resilience,
                    checkpoint_dir,
                    observe,
                    progress,
                )

            def entry():
                result, retries = run_with_retry(
                    attempt, retry, key=(f"zgrab{scan_index}", f"shard{shard_id}")
                )
                result[1].retries = retries
                return result

            return entry() if pool is None else pool.submit(entry)

        def submit_process(pool, shard_id):
            return pool.submit(
                _zgrab_process_entry,
                shard_id,
                shard_indices[shard_id],
                scan_index,
                retry,
                resilience,
                checkpoint_dir,
                observe,
            )

        partials, self.metrics = self._execute(
            submit_local, submit_process, kind=f"zgrab{scan_index}"
        )
        merged = ZgrabScanPartial()
        for shard_id in sorted(partials):
            merged.merge(partials[shard_id])
        return ZgrabCampaign(population=self.population).finalize_scan(merged, scan_index)

    def both_scans(self) -> list[ZgrabScanResult]:
        return [self.scan(0), self.scan(1)]


@dataclass
class ShardedChromeCampaign(_ShardedCampaignBase):
    """Shard-parallel drop-in for :class:`ChromeCampaign`.

    Each shard drives its own fresh browser, so per-page RNG (keyed by URL)
    and page-load timing replay exactly as in the sequential run. In thread
    mode, pass a ``recipe`` to give every worker thread its own rebuilt
    population — Coinhive pool state is mutated during visits, and the
    rebuild isolates those writes without changing any detection outcome.
    In process mode the fork gives workers copy-on-write isolation for free.
    """

    population: Optional[WebPopulation] = None
    recipe: Optional[PopulationRecipe] = None
    config: ParallelConfig = field(default_factory=ParallelConfig)
    browser_config: BrowserConfig = field(default_factory=BrowserConfig)
    #: path to a ``SignatureDatabase.to_json`` file; workers load it instead
    #: of building the reference catalogue (the path, not the db, crosses
    #: thread/process boundaries)
    signature_db_path: Optional[str] = None
    metrics: Optional[CampaignMetrics] = None
    #: observability context; shard traces and registries merge into it
    obs: Obs = field(default=NULL_OBS, repr=False)
    #: live heartbeat reporter (``--heartbeat``); ``None`` costs nothing
    progress: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.population is None:
            if self.recipe is None:
                raise ValueError("need a population or a recipe")
            self.population = self.recipe.build()

    def _shard_population(self) -> WebPopulation:
        if self.config.mode == "thread" and self.recipe is not None:
            return _worker_population(self.recipe)
        return self.population

    def run(self) -> ChromeCampaignResult:
        shard_indices, _ = self._partition()
        retry = self.config.retry
        browser_config = self.browser_config
        checkpoint_dir = self.config.checkpoint_dir
        observe = self.obs.enabled
        signature_db_path = self.signature_db_path
        progress = self.progress if self.config.mode != "process" else None

        def submit_local(pool, shard_id):
            def attempt():
                return _call_chrome_work(
                    self._shard_population(),
                    shard_id,
                    shard_indices[shard_id],
                    browser_config,
                    checkpoint_dir,
                    observe,
                    progress,
                    signature_db_path,
                )

            def entry():
                result, retries = run_with_retry(
                    attempt, retry, key=("chrome", f"shard{shard_id}")
                )
                result[1].retries = retries
                return result

            return entry() if pool is None else pool.submit(entry)

        def submit_process(pool, shard_id):
            return pool.submit(
                _chrome_process_entry,
                shard_id,
                shard_indices[shard_id],
                browser_config,
                retry,
                checkpoint_dir,
                observe,
                signature_db_path,
            )

        partials, self.metrics = self._execute(submit_local, submit_process, kind="chrome")
        merged = ChromeRunPartial()
        for shard_id in sorted(partials):
            merged.merge(partials[shard_id])
        finalizer = ChromeCampaign(
            population=self.population,
            detector=PageDetector(),  # finalize only aggregates; no detection runs
            browser_config=self.browser_config,
        )
        return finalizer.finalize_run(merged)
