"""Measurement campaigns and the table/figure reproduction harness.

One module per experiment group:

- :mod:`repro.analysis.crawl` — the zgrab campaign (Figure 2) and the
  Chrome campaign (Tables 1–3).
- :mod:`repro.analysis.shortlink` — the cnhv.co study (Figures 3–4,
  Tables 4–5).
- :mod:`repro.analysis.network` — the four-week/three-month network
  observation (Figure 5, Table 6).
- :mod:`repro.analysis.economics` — revenue arithmetic.
- :mod:`repro.analysis.parallel` — the sharded parallel campaign executor
  (deterministic domain→shard hashing, thread/process pools, retries).
- :mod:`repro.analysis.metrics` — per-shard execution metrics.
- :mod:`repro.analysis.reporting` — plain-text table and chart rendering
  so every benchmark prints the same rows/series as the paper.
"""

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.metrics import CampaignMetrics, ShardMetrics
from repro.analysis.parallel import (
    ParallelConfig,
    PopulationRecipe,
    ShardedChromeCampaign,
    ShardedZgrabCampaign,
)
from repro.analysis.shortlink import ShortLinkStudy
from repro.analysis.network import NetworkObservation, NetworkSimConfig, simulate_network
from repro.analysis.economics import EconomicsReport

__all__ = [
    "CampaignMetrics",
    "ChromeCampaign",
    "ParallelConfig",
    "PopulationRecipe",
    "ShardMetrics",
    "ShardedChromeCampaign",
    "ShardedZgrabCampaign",
    "ZgrabCampaign",
    "ShortLinkStudy",
    "NetworkObservation",
    "NetworkSimConfig",
    "simulate_network",
    "EconomicsReport",
]
