"""Revenue arithmetic (Section 4.2's economics).

Pure functions over attribution results: XMR mined, USD turnover, the
70/30 split, and the user-count bracket — everything behind the paper's
"Moneros worth 150,000 USD per month" and "between 292K and 58K constantly
mining users".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockchain.transactions import ATOMIC_PER_XMR
from repro.core.pool_association import NetworkEstimator

XMR_USD_AT_WRITING = 120.0   # the paper's conversion rate
XMR_USD_2018_PEAK = 400.0


@dataclass(frozen=True)
class EconomicsReport:
    """Monthly economics of a pool."""

    xmr_mined: float
    usd_per_xmr: float = XMR_USD_AT_WRITING
    pool_fee_percent: int = 30

    @property
    def gross_usd(self) -> float:
        return self.xmr_mined * self.usd_per_xmr

    @property
    def pool_cut_usd(self) -> float:
        return self.gross_usd * self.pool_fee_percent / 100

    @property
    def users_cut_usd(self) -> float:
        return self.gross_usd - self.pool_cut_usd

    @classmethod
    def from_attributed(cls, attributed, usd_per_xmr: float = XMR_USD_AT_WRITING) -> "EconomicsReport":
        xmr = sum(block.reward_atomic for block in attributed) / ATOMIC_PER_XMR
        return cls(xmr_mined=xmr, usd_per_xmr=usd_per_xmr)


def user_count_bracket(
    pool_hashrate: float, low_rate: float = 20.0, high_rate: float = 100.0
) -> tuple:
    """(max_users, min_users) needed to sustain ``pool_hashrate``.

    Paper: 5.5 MH/s at 20–100 H/s per client ⇒ between 292K and 58K
    constantly mining users.
    """
    estimator = NetworkEstimator()
    return (
        estimator.users_required(pool_hashrate, low_rate),
        estimator.users_required(pool_hashrate, high_rate),
    )
