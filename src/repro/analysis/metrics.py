"""Per-shard campaign metrics.

The sharded executor (:mod:`repro.analysis.parallel`) measures every shard
worker — wall clock, throughput, fetch failures, detector hits, retries —
and aggregates them into a :class:`CampaignMetrics` the CLI renders next
to the campaign results. Shards that exhausted their retries are kept in
the list with their ``error`` set, so degraded runs stay inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.ledger import FaultLedger


@dataclass
class ShardMetrics:
    """Measurements of one shard worker's execution."""

    shard_id: int
    sites: int
    wall_seconds: float = 0.0
    domains_probed: int = 0
    fetch_failures: int = 0
    detector_hits: int = 0
    retries: int = 0
    error: Optional[str] = None
    #: fault accounting for this shard (``None`` when no chaos plane ran)
    ledger: Optional[FaultLedger] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def domains_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.domains_probed / self.wall_seconds


@dataclass
class CampaignMetrics:
    """Aggregated view over every shard of one campaign execution."""

    shards: list[ShardMetrics] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "serial"
    workers: int = 1

    @property
    def total_sites(self) -> int:
        return sum(shard.sites for shard in self.shards)

    @property
    def total_probed(self) -> int:
        return sum(shard.domains_probed for shard in self.shards)

    @property
    def total_fetch_failures(self) -> int:
        return sum(shard.fetch_failures for shard in self.shards)

    @property
    def total_detector_hits(self) -> int:
        return sum(shard.detector_hits for shard in self.shards)

    @property
    def total_retries(self) -> int:
        return sum(shard.retries for shard in self.shards)

    @property
    def failed_shards(self) -> list[int]:
        return [shard.shard_id for shard in self.shards if not shard.ok]

    @property
    def fault_ledger(self) -> FaultLedger:
        """All shard ledgers merged (additively, in shard order)."""
        merged = FaultLedger()
        for shard in self.shards:
            if shard.ledger is not None:
                merged.merge(shard.ledger)
        return merged

    @property
    def aggregate_rate(self) -> float:
        """Overall domains/second against campaign wall clock."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_probed / self.wall_seconds

    @property
    def parallel_efficiency(self) -> float:
        """Sum of shard wall clocks over campaign wall clock × workers.

        1.0 means every worker stayed busy the whole time; low values flag
        skewed shards or scheduling overhead.
        """
        if self.wall_seconds <= 0.0 or self.workers <= 0:
            return 0.0
        busy = sum(shard.wall_seconds for shard in self.shards)
        return busy / (self.wall_seconds * self.workers)

    def summary_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.analysis.reporting.render_table`."""
        rows: list[list[object]] = []
        for shard in self.shards:
            rows.append(
                [
                    shard.shard_id,
                    shard.sites,
                    f"{shard.wall_seconds:.3f}s",
                    f"{shard.domains_per_sec:.0f}/s",
                    shard.fetch_failures,
                    shard.detector_hits,
                    shard.retries,
                    "ok" if shard.ok else f"FAILED: {shard.error}",
                ]
            )
        return rows

    SUMMARY_HEADER = [
        "shard", "sites", "wall", "rate", "fetch fails", "hits", "retries", "status",
    ]
