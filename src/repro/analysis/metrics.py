"""Per-shard campaign metrics.

The sharded executor (:mod:`repro.analysis.parallel`) measures every shard
worker — wall clock, throughput, fetch failures, detector hits, retries —
and aggregates them into a :class:`CampaignMetrics` the CLI renders next
to the campaign results. Shards that exhausted their retries are kept in
the list with their ``error`` set, so degraded runs stay inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.ledger import FaultLedger
from repro.obs.metrics import MetricsRegistry


@dataclass
class ShardMetrics:
    """Measurements of one shard worker's execution."""

    shard_id: int
    sites: int
    wall_seconds: float = 0.0
    domains_probed: int = 0
    fetch_failures: int = 0
    detector_hits: int = 0
    retries: int = 0
    error: Optional[str] = None
    #: fault accounting for this shard (``None`` when no chaos plane ran)
    ledger: Optional[FaultLedger] = None
    #: unified obs registry for this shard (``None`` when obs is off)
    registry: Optional[MetricsRegistry] = None
    #: spans traced inside this shard (``None`` when obs is off)
    spans: Optional[list] = None

    def as_registry(self) -> MetricsRegistry:
        """This shard's tallies under the unified merge law.

        Starts from the obs registry (stage histograms, counters recorded
        during the shard run) and folds in the dataclass fields plus the
        fault ledger, so one ``MetricsRegistry.merge`` chain reproduces
        every aggregate ``CampaignMetrics`` computes field-by-field.
        """
        registry = MetricsRegistry()
        if self.registry is not None:
            registry.merge(self.registry)
        registry.inc("shard.sites", self.sites)
        registry.inc("shard.domains_probed", self.domains_probed)
        registry.inc("shard.fetch_failures", self.fetch_failures)
        registry.inc("shard.detector_hits", self.detector_hits)
        registry.inc("shard.retries", self.retries)
        registry.inc("shard.failed", 0 if self.ok else 1)
        if self.ledger is not None:
            registry.merge(self.ledger.as_registry())
        return registry

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def domains_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.domains_probed / self.wall_seconds


@dataclass
class CampaignMetrics:
    """Aggregated view over every shard of one campaign execution."""

    shards: list[ShardMetrics] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "serial"
    workers: int = 1

    @property
    def total_sites(self) -> int:
        return sum(shard.sites for shard in self.shards)

    @property
    def total_probed(self) -> int:
        return sum(shard.domains_probed for shard in self.shards)

    @property
    def total_fetch_failures(self) -> int:
        return sum(shard.fetch_failures for shard in self.shards)

    @property
    def total_detector_hits(self) -> int:
        return sum(shard.detector_hits for shard in self.shards)

    @property
    def total_retries(self) -> int:
        return sum(shard.retries for shard in self.shards)

    @property
    def failed_shards(self) -> list[int]:
        return [shard.shard_id for shard in self.shards if not shard.ok]

    @property
    def fault_ledger(self) -> FaultLedger:
        """All shard ledgers merged (additively, in shard order)."""
        merged = FaultLedger()
        for shard in self.shards:
            if shard.ledger is not None:
                merged.merge(shard.ledger)
        return merged

    def merged_registry(self) -> MetricsRegistry:
        """Every shard's registry folded under the single merge law.

        Because counter addition is associative and commutative with the
        empty registry as identity, the result is independent of shard
        order, worker count, and execution mode — the property the
        determinism suite pins (serial == thread == process == resumed
        for the ``fault.*`` and ``shard.*`` planes).
        """
        merged = MetricsRegistry()
        for shard in self.shards:
            merged.merge(shard.as_registry())
        return merged

    def all_spans(self) -> list:
        """Spans from every shard, in shard order."""
        spans: list = []
        for shard in self.shards:
            if shard.spans:
                spans.extend(shard.spans)
        return spans

    @property
    def aggregate_rate(self) -> float:
        """Overall domains/second against campaign wall clock."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_probed / self.wall_seconds

    @property
    def parallel_efficiency(self) -> float:
        """Sum of shard wall clocks over campaign wall clock × workers.

        1.0 means every worker stayed busy the whole time; low values flag
        skewed shards or scheduling overhead.
        """
        if self.wall_seconds <= 0.0 or self.workers <= 0:
            return 0.0
        busy = sum(shard.wall_seconds for shard in self.shards)
        return busy / (self.wall_seconds * self.workers)

    def summary_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.analysis.reporting.render_table`."""
        rows: list[list[object]] = []
        for shard in self.shards:
            rows.append(
                [
                    shard.shard_id,
                    shard.sites,
                    f"{shard.wall_seconds:.3f}s",
                    f"{shard.domains_per_sec:.0f}/s",
                    shard.fetch_failures,
                    shard.detector_hits,
                    shard.retries,
                    "ok" if shard.ok else f"FAILED: {shard.error}",
                ]
            )
        return rows

    SUMMARY_HEADER = [
        "shard", "sites", "wall", "rate", "fetch fails", "hits", "retries", "status",
    ]
