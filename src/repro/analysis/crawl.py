"""Crawl campaigns (Sections 3.1 and 3.2).

:class:`ZgrabCampaign` reproduces Figure 2: TLS-only landing-page fetches
matched against the NoCoin list, with per-script-family shares, across two
scan dates (the second scan applies the population's churn flags).

:class:`ChromeCampaign` reproduces Tables 1–3: instrumented browser visits
of ``http://www.<domain>`` with Wasm-signature classification, NoCoin
re-matching on post-execution HTML, and RuleSpace categorization.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.core.detector import CrossTabulation, DetectionReport, PageDetector, cross_tabulate
from repro.core.signatures import SignatureDatabase, build_reference_database, wasm_signature
from repro.internet.population import WebPopulation
from repro.rulespace.engine import RuleSpaceEngine
from repro.web.browser import BrowserConfig, HeadlessBrowser
from repro.web.zgrab import ZgrabFetcher


@dataclass
class ZgrabScanResult:
    """One Figure-2 bar: a dataset at one scan date."""

    dataset: str
    scan_date: str
    domains_probed: int
    nocoin_domains: int
    script_shares: dict  # family label → share of detected domains
    paper_total_domains: int
    fetch_failures: int = 0  # DNS/TLS/timeout — the non-HTTPS web, mostly

    @property
    def prevalence(self) -> float:
        """Share of the paper's full zone this detection count represents."""
        return self.nocoin_domains / self.paper_total_domains


@dataclass
class ZgrabCampaign:
    """Runs the Section 3.1 pipeline over a population."""

    population: WebPopulation
    detector: PageDetector = field(default_factory=PageDetector)

    def scan(self, scan_index: int = 0) -> ZgrabScanResult:
        """Scan ``0`` (first date) or ``1`` (second date, after churn)."""
        spec = self.population.spec
        fetcher = ZgrabFetcher(self.population.web)
        label_hits: Counter = Counter()
        nocoin_domains = 0
        probed = 0
        failures = 0
        for site in self.population.sites:
            if scan_index == 1 and not site.present_scan2:
                continue  # site dropped its tag between the scans
            probed += 1
            result = fetcher.fetch_domain(site.domain)
            if not result.ok:
                failures += 1
                continue
            report = self.detector.detect_static(site.domain, result.body)
            if report.nocoin_hit:
                nocoin_domains += 1
                for label in report.nocoin_rule_labels:
                    label_hits[label] += 1
        shares = {
            label: count / nocoin_domains for label, count in label_hits.most_common()
        } if nocoin_domains else {}
        # scale the detected count back up by the churned share so both
        # scans report against the same nominal zone size
        return ZgrabScanResult(
            dataset=spec.name,
            scan_date=spec.scan_dates[scan_index],
            domains_probed=probed,
            nocoin_domains=nocoin_domains,
            script_shares=shares,
            paper_total_domains=spec.paper_total_domains,
            fetch_failures=failures,
        )

    def both_scans(self) -> list:
        return [self.scan(0), self.scan(1)]


@dataclass
class ChromeCampaignResult:
    """Everything Tables 1–3 need from one Chrome crawl."""

    dataset: str
    reports: list
    signature_counts: Counter       # family → #sites with that miner (Table 1)
    total_wasm_sites: int
    miner_wasm_sites: int
    cross_tab: CrossTabulation      # Table 2
    nocoin_categories: Counter      # Table 3 left columns
    nocoin_categorized_fraction: float
    signature_categories: Counter   # Table 3 right columns
    signature_categorized_fraction: float


@dataclass
class ChromeCampaign:
    """Runs the Section 3.2 pipeline over a population."""

    population: WebPopulation
    detector: Optional[PageDetector] = None
    browser_config: BrowserConfig = field(default_factory=BrowserConfig)
    rulespace: RuleSpaceEngine = field(default_factory=RuleSpaceEngine)

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = PageDetector()
            self.detector.classifier.database = build_reference_database()

    def run(self) -> ChromeCampaignResult:
        browser = HeadlessBrowser(
            self.population.web,
            config=self.browser_config,
            behavior_registry=self.population.behavior_registry,
        )
        reports: list[DetectionReport] = []
        signature_counts: Counter = Counter()
        total_wasm_sites = 0
        miner_wasm_sites = 0
        nocoin_cats: Counter = Counter()
        nocoin_total = 0
        nocoin_categorized = 0
        sig_cats: Counter = Counter()
        sig_total = 0
        sig_categorized = 0

        for site in self.population.sites:
            page = browser.visit(f"http://www.{site.domain}/")
            report = self.detector.detect_page(site.domain, page)
            reports.append(report)
            if report.wasm_present:
                total_wasm_sites += 1
            if report.is_miner:
                miner_wasm_sites += 1
                signature_counts[self._display_family(report.miner.family)] += 1
            if report.nocoin_hit:
                nocoin_total += 1
                labels = self.rulespace.classify_domain(site.domain)
                if labels:
                    nocoin_categorized += 1
                    nocoin_cats.update(labels[:1])
            if report.is_miner:
                sig_total += 1
                labels = self.rulespace.classify_domain(site.domain)
                if labels:
                    sig_categorized += 1
                    sig_cats.update(labels[:1])

        return ChromeCampaignResult(
            dataset=self.population.spec.name,
            reports=reports,
            signature_counts=signature_counts,
            total_wasm_sites=total_wasm_sites,
            miner_wasm_sites=miner_wasm_sites,
            cross_tab=cross_tabulate(reports),
            nocoin_categories=nocoin_cats,
            nocoin_categorized_fraction=nocoin_categorized / nocoin_total if nocoin_total else 0.0,
            signature_categories=sig_cats,
            signature_categorized_fraction=sig_categorized / sig_total if sig_total else 0.0,
        )

    @staticmethod
    def _display_family(family: str) -> str:
        """Paper naming: the WebSocket-only class prints as UnknownWSS."""
        return "UnknownWSS" if family in ("unknown-wss", "unknown-miner") else family
