"""Crawl campaigns (Sections 3.1 and 3.2).

:class:`ZgrabCampaign` reproduces Figure 2: TLS-only landing-page fetches
matched against the NoCoin list, with per-script-family shares, across two
scan dates (the second scan applies the population's churn flags).

:class:`ChromeCampaign` reproduces Tables 1–3: instrumented browser visits
of ``http://www.<domain>`` with Wasm-signature classification, NoCoin
re-matching on post-execution HTML, and RuleSpace categorization.

Both campaigns are written as *merge-friendly* pipelines: the per-site work
lives in ``scan_sites``/``run_sites``, which return additive partial
results, and the final report is assembled by a separate ``finalize_*``
step. The sequential entry points (``scan``/``run``) are just
"one partial covering every site"; the sharded executor in
:mod:`repro.analysis.parallel` runs the same per-site code on site subsets
and merges the partials — by construction the merged output is identical
to the sequential one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.core.detector import CrossTabulation, DetectionReport, PageDetector, cross_tabulate
from repro.core.signatures import SignatureDatabase, build_reference_database, wasm_signature
from repro.faults.checkpoint import CheckpointJournal
from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultKind
from repro.faults.resilience import ResiliencePolicy
from repro.faults.taxonomy import ErrorClass
from repro.graph.build import add_verdict
from repro.graph.model import Graph
from repro.internet.population import SiteSpec, WebPopulation
from repro.obs.evidence import VerdictRecord
from repro.obs.profile import NULL_OBS, Obs
from repro.rulespace.engine import RuleSpaceEngine
from repro.web.browser import BrowserConfig, HeadlessBrowser
from repro.web.zgrab import ZgrabFetcher


def _captured_stage_spans(spans: list, mark: int) -> tuple:
    """Snapshot the child spans a site visit finished since ``mark``.

    Stored on the checkpointed outcome as ``(name, tags)`` pairs so a
    resumed run can replay them — all per-site stages are flat children
    of the site span and finish before it does, so finish order equals
    open order and the slice is exactly this site's children.
    """
    return tuple((span.name, tuple(span.tags.items())) for span in spans[mark:])


def _replay_stage_spans(obs: Obs, stage_spans: tuple) -> None:
    """Re-open the recorded child spans of a checkpointed site.

    The replay makes the same ``span()`` calls (and therefore the same
    clock reads) the original visit made around its inner work, so a
    resumed run keeps the fresh run's span-id set and, under a
    ``TickClock``, its exact stage histograms.
    """
    for name, tags in stage_spans:
        with obs.span(name) as span:
            for key, value in tags:
                span.set_tag(key, value)


def _includers_for(population, site) -> tuple:
    """The seeded includers of one site; ``()`` for pre-layer populations."""
    layer = getattr(population, "includer_layer", None)
    return layer.includers_for(site) if layer is not None else ()


def _canonical_order(counter: Counter) -> Counter:
    """Re-insert entries by (count desc, label asc).

    Counter equality ignores insertion order, but ``most_common`` breaks
    ties by it — and merged partials insert in shard order while a
    sequential pass inserts in population order. Canonicalizing in the
    shared finalize step makes rendered tables (top-5 cuts, share
    listings) byte-identical across execution modes.
    """
    return Counter(dict(sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))))


def _stratum_rows(population, partial: "ZgrabScanPartial") -> tuple:
    """Per-stratum prevalence rows, rank order; empty for legacy builds.

    Prevalence is over *successful* probes, then extrapolated over the
    stratum's full rank range — the honest way to report a stratified
    sample against the whole population.
    """
    strata = getattr(population, "strata", ())
    if not strata or not partial.stratum_probed:
        return ()
    sizes = population.stratum_sizes()
    rows = []
    for stratum in strata:
        probed = partial.stratum_probed.get(stratum.name, 0)
        size = sizes.get(stratum.name, 0)
        if probed == 0 and size == 0:
            continue
        hits = partial.stratum_hits.get(stratum.name, 0)
        failures = partial.stratum_failures.get(stratum.name, 0)
        reached = probed - failures
        prevalence = hits / reached if reached else 0.0
        rows.append(
            StratumPrevalence(
                stratum=stratum.name,
                probed=probed,
                hits=hits,
                failures=failures,
                prevalence=prevalence,
                population_size=size,
                estimated_domains=round(prevalence * size),
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class StratumPrevalence:
    """Per-rank-stratum detection tallies of one zgrab pass.

    ``estimated_domains`` extrapolates the stratum's hit rate over its
    full rank range — how a stratified sample reports against the whole
    population (the paper's Table 2 Alexa-vs-zone-file shape).
    """

    stratum: str
    probed: int
    hits: int
    failures: int
    prevalence: float
    population_size: int
    estimated_domains: int


@dataclass
class ZgrabScanResult:
    """One Figure-2 bar: a dataset at one scan date."""

    dataset: str
    scan_date: str
    domains_probed: int
    nocoin_domains: int
    script_shares: dict[str, float]  # family label → share of detected domains
    paper_total_domains: int
    fetch_failures: int = 0  # DNS/TLS/timeout — the non-HTTPS web, mostly
    #: per-stratum prevalence rows (streaming populations; empty legacy)
    stratum_rows: tuple = ()
    #: per-site verdicts with evidence, population order; empty unless the
    #: campaign ran with observability enabled. Telemetry, not a result:
    #: excluded from equality so observed and bare runs stay comparable.
    verdicts: tuple = field(default=(), compare=False)
    #: attribution subgraph of this pass; ``None`` on unobserved runs
    graph: Optional[Graph] = field(default=None, compare=False)

    @property
    def prevalence(self) -> float:
        """Share of the paper's full zone this detection count represents."""
        return self.nocoin_domains / self.paper_total_domains


@dataclass
class ZgrabScanPartial:
    """Additive per-site tallies of one zgrab pass (or one shard of it).

    Partials from disjoint site subsets merge into exactly the totals a
    single pass over the union would produce: every field is a plain sum.
    """

    domains_probed: int = 0
    nocoin_domains: int = 0
    fetch_failures: int = 0
    label_hits: Counter = field(default_factory=Counter)
    #: per-stratum tallies, filled only for stratum-labelled (streaming)
    #: sites so legacy results stay byte-identical
    stratum_probed: Counter = field(default_factory=Counter)
    stratum_hits: Counter = field(default_factory=Counter)
    stratum_failures: Counter = field(default_factory=Counter)
    fault_ledger: FaultLedger = field(default_factory=FaultLedger)
    #: ``(population index, VerdictRecord)`` pairs, observed runs only
    verdicts: list = field(default_factory=list)
    #: attribution subgraph, observed runs only; merge is the graph union
    graph: Graph = field(default_factory=Graph)

    def merge(self, other: "ZgrabScanPartial") -> "ZgrabScanPartial":
        self.domains_probed += other.domains_probed
        self.nocoin_domains += other.nocoin_domains
        self.fetch_failures += other.fetch_failures
        self.label_hits.update(other.label_hits)
        self.stratum_probed.update(other.stratum_probed)
        self.stratum_hits.update(other.stratum_hits)
        self.stratum_failures.update(other.stratum_failures)
        self.fault_ledger.merge(other.fault_ledger)
        self.verdicts.extend(other.verdicts)
        self.graph.merge(other.graph)
        return self


@dataclass(frozen=True)
class ZgrabSiteOutcome:
    """One site's zgrab verdict plus its fault accounting.

    This is the checkpoint unit: order-independent and additive, so a
    resumed shard replaying recorded outcomes merges bit-identically.
    """

    failed: bool = False
    nocoin_hit: bool = False
    labels: tuple = ()
    ledger: FaultLedger = field(default_factory=FaultLedger)
    #: ``(name, tags)`` of the stage spans the visit opened, recorded only
    #: on observed journaled runs so a resume can replay the trace shape
    stage_spans: tuple = ()
    #: evidence chain from the detector, collected on observed runs only
    evidence: tuple = ()


@dataclass
class ZgrabCampaign:
    """Runs the Section 3.1 pipeline over a population."""

    population: WebPopulation
    detector: PageDetector = field(default_factory=PageDetector)
    #: retry/breaker/deadline settings for the fetcher; ``None`` keeps the
    #: legacy single-attempt behaviour
    resilience: Optional[ResiliencePolicy] = None
    #: observability hook (spans + stage histograms); defaults to disabled
    obs: Obs = field(default=NULL_OBS, repr=False)

    def scan_sites(self, sites: Iterable[SiteSpec], scan_index: int = 0) -> ZgrabScanPartial:
        """Fetch-and-match a subset of sites; returns the additive tallies."""
        return self.scan_sites_indexed(enumerate(sites), scan_index)

    def scan_sites_indexed(
        self,
        indexed_sites: Iterable[tuple[int, SiteSpec]],
        scan_index: int = 0,
        journal: Optional[CheckpointJournal] = None,
        progress=None,
    ) -> ZgrabScanPartial:
        """Scan ``(population index, site)`` pairs, optionally journaled.

        With a ``journal``, sites already recorded are replayed instead of
        re-fetched, and every fresh site is recorded as it completes — a
        shard killed mid-run resumes from the journal and still merges to
        the exact uninterrupted result (fault decisions are keyed on
        domains, never on execution position). Resumed sites replay their
        recorded stage spans so the trace keeps the fresh run's shape.
        """
        fetcher = ZgrabFetcher(
            self.population.web, resilience=self.resilience, obs=self.obs
        )
        if self.obs.enabled:
            self.detector.collect_evidence = True
        record_spans = journal is not None and self.obs.enabled
        partial = ZgrabScanPartial()
        done = journal.load() if journal is not None else {}
        for index, site in indexed_sites:
            if scan_index == 1 and not site.present_scan2:
                if progress is not None:
                    progress.advance(1)  # churned between the scans
                continue
            with self.obs.span("site", domain=site.domain) as span:
                outcome = done.get(index)
                if outcome is not None:
                    span.set_tag("resumed", 1)
                    partial.fault_ledger.checkpoint_resumed += 1
                    if self.obs.enabled:
                        _replay_stage_spans(self.obs, getattr(outcome, "stage_spans", ()))
                else:
                    mark = len(self.obs.tracer.spans) if record_spans else 0
                    outcome = self._scan_site(fetcher, site)
                    if journal is not None:
                        if record_spans:
                            outcome = replace(
                                outcome,
                                stage_spans=_captured_stage_spans(
                                    self.obs.tracer.spans, mark
                                ),
                            )
                        journal.record(index, outcome)
                        partial.fault_ledger.checkpoint_recorded += 1
                if outcome.failed:
                    span.set_tag("failed", 1)
                self._apply_outcome(partial, index, site, outcome, scan_index)
            if progress is not None:
                progress.advance(
                    1,
                    failed=1 if outcome.failed else 0,
                    faults=outcome.ledger.total_injected,
                    breakers_opened=outcome.ledger.breaker_opened,
                    breakers_closed=outcome.ledger.breaker_closed,
                )
        return partial

    def _scan_site(self, fetcher: ZgrabFetcher, site: SiteSpec) -> ZgrabSiteOutcome:
        ledger = FaultLedger()
        result = fetcher.fetch_domain(site.domain, ledger=ledger)
        if not result.ok:
            return ZgrabSiteOutcome(failed=True, ledger=ledger)
        with self.obs.span("detect"):
            report = self.detector.detect_static(site.domain, result.body)
        return ZgrabSiteOutcome(
            nocoin_hit=report.nocoin_hit,
            labels=tuple(report.nocoin_rule_labels),
            ledger=ledger,
            evidence=tuple(report.evidence),
        )

    def _apply_outcome(
        self,
        partial: ZgrabScanPartial,
        index: int,
        site: SiteSpec,
        outcome: ZgrabSiteOutcome,
        scan_index: int,
    ) -> None:
        partial.domains_probed += 1
        stratum = getattr(site, "stratum", "")
        if stratum:
            partial.stratum_probed[stratum] += 1
        if outcome.failed:
            partial.fetch_failures += 1
            if stratum:
                partial.stratum_failures[stratum] += 1
        elif outcome.nocoin_hit:
            partial.nocoin_domains += 1
            if stratum:
                partial.stratum_hits[stratum] += 1
            for label in outcome.labels:
                partial.label_hits[label] += 1
        partial.fault_ledger.merge(outcome.ledger)
        if self.obs.enabled:
            # verdict + counters live here so resumed sites (which also
            # flow through _apply_outcome) stay indistinguishable from
            # fresh ones in the ledger and the detector.* namespace
            if outcome.nocoin_hit:
                self.obs.inc("detector.nocoin.static_hits")
                if stratum:
                    self.obs.inc(f"detector.nocoin.stratum.{stratum}.hits")
            record = VerdictRecord(
                subject=site.domain,
                dataset=self.population.spec.name,
                pipeline=f"zgrab{scan_index}",
                status="error" if outcome.failed else "ok",
                nocoin_hit=outcome.nocoin_hit,
                stratum=stratum,
                evidence=getattr(outcome, "evidence", ()),
            )
            partial.verdicts.append((index, record))
            add_verdict(
                partial.graph,
                record,
                site=site,
                includers=_includers_for(self.population, site),
            )

    def finalize_scan(self, partial: ZgrabScanPartial, scan_index: int = 0) -> ZgrabScanResult:
        """Turn (possibly merged) tallies into the Figure-2 result row."""
        spec = self.population.spec
        shares = {
            label: count / partial.nocoin_domains
            for label, count in _canonical_order(partial.label_hits).items()
        } if partial.nocoin_domains else {}
        # scale the detected count back up by the churned share so both
        # scans report against the same nominal zone size
        return ZgrabScanResult(
            dataset=spec.name,
            scan_date=spec.scan_dates[scan_index],
            domains_probed=partial.domains_probed,
            nocoin_domains=partial.nocoin_domains,
            script_shares=shares,
            paper_total_domains=spec.paper_total_domains,
            fetch_failures=partial.fetch_failures,
            stratum_rows=_stratum_rows(self.population, partial),
            verdicts=tuple(
                verdict
                for _, verdict in sorted(partial.verdicts, key=lambda item: item[0])
            ),
            graph=partial.graph if partial.graph else None,
        )

    def scan(self, scan_index: int = 0) -> ZgrabScanResult:
        """Scan ``0`` (first date) or ``1`` (second date, after churn)."""
        return self.finalize_scan(
            self.scan_sites(self.population.sites, scan_index), scan_index
        )

    def both_scans(self) -> list[ZgrabScanResult]:
        return [self.scan(0), self.scan(1)]


@dataclass
class ChromeCampaignResult:
    """Everything Tables 1–3 need from one Chrome crawl."""

    dataset: str
    reports: list[DetectionReport]
    signature_counts: Counter       # family → #sites with that miner (Table 1)
    total_wasm_sites: int
    miner_wasm_sites: int
    cross_tab: CrossTabulation      # Table 2
    nocoin_categories: Counter      # Table 3 left columns
    nocoin_categorized_fraction: float
    signature_categories: Counter   # Table 3 right columns
    signature_categorized_fraction: float
    #: per-site verdicts with evidence, population order; empty unless the
    #: campaign ran with observability enabled. Telemetry, not a result:
    #: excluded from equality so observed and bare runs stay comparable.
    verdicts: tuple = field(default=(), compare=False)
    #: attribution subgraph of this crawl; ``None`` on unobserved runs
    graph: Optional[Graph] = field(default=None, compare=False)


@dataclass
class ChromeRunPartial:
    """Additive tallies of a Chrome crawl over a subset of sites.

    ``reports`` carries the original population index of every site so that
    merged partials reassemble the report list in population order — the
    cross-tabulation and downstream consumers then see exactly the
    sequential ordering.
    """

    reports: list[tuple[int, DetectionReport]] = field(default_factory=list)
    signature_counts: Counter = field(default_factory=Counter)
    total_wasm_sites: int = 0
    miner_wasm_sites: int = 0
    nocoin_categories: Counter = field(default_factory=Counter)
    nocoin_total: int = 0
    nocoin_categorized: int = 0
    signature_categories: Counter = field(default_factory=Counter)
    signature_total: int = 0
    signature_categorized: int = 0
    fault_ledger: FaultLedger = field(default_factory=FaultLedger)
    #: ``(population index, VerdictRecord)`` pairs, observed runs only
    verdicts: list = field(default_factory=list)
    #: attribution subgraph, observed runs only; merge is the graph union
    graph: Graph = field(default_factory=Graph)

    def merge(self, other: "ChromeRunPartial") -> "ChromeRunPartial":
        self.reports.extend(other.reports)
        self.verdicts.extend(other.verdicts)
        self.graph.merge(other.graph)
        self.signature_counts.update(other.signature_counts)
        self.total_wasm_sites += other.total_wasm_sites
        self.miner_wasm_sites += other.miner_wasm_sites
        self.nocoin_categories.update(other.nocoin_categories)
        self.nocoin_total += other.nocoin_total
        self.nocoin_categorized += other.nocoin_categorized
        self.signature_categories.update(other.signature_categories)
        self.signature_total += other.signature_total
        self.signature_categorized += other.signature_categorized
        self.fault_ledger.merge(other.fault_ledger)
        return self


@dataclass(frozen=True)
class ChromeSiteOutcome:
    """One site's Chrome-visit detection report plus fault accounting."""

    report: DetectionReport
    ledger: FaultLedger = field(default_factory=FaultLedger)
    #: ``(name, tags)`` of the stage spans the visit opened, recorded only
    #: on observed journaled runs so a resume can replay the trace shape
    stage_spans: tuple = ()


@dataclass
class ChromeCampaign:
    """Runs the Section 3.2 pipeline over a population."""

    population: WebPopulation
    detector: Optional[PageDetector] = None
    browser_config: BrowserConfig = field(default_factory=BrowserConfig)
    rulespace: RuleSpaceEngine = field(default_factory=RuleSpaceEngine)
    #: observability hook (spans + stage histograms); defaults to disabled
    obs: Obs = field(default=NULL_OBS, repr=False)

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = PageDetector()
            self.detector.classifier.database = build_reference_database()

    def run_sites(
        self,
        indexed_sites: Iterable[tuple[int, SiteSpec]],
        journal: Optional[CheckpointJournal] = None,
        progress=None,
    ) -> ChromeRunPartial:
        """Visit a subset of ``(population index, site)`` pairs.

        A fresh browser drives the subset; page-level randomness is keyed
        by URL (not visit order), so the outcome per site is the same no
        matter how sites are grouped into subsets. With a ``journal``,
        already-recorded sites are replayed instead of re-visited (see
        :meth:`ZgrabCampaign.scan_sites_indexed`).
        """
        browser = HeadlessBrowser(
            self.population.web,
            config=self.browser_config,
            behavior_registry=self.population.behavior_registry,
            obs=self.obs,
        )
        if self.obs.enabled:
            self.detector.collect_evidence = True
        record_spans = journal is not None and self.obs.enabled
        partial = ChromeRunPartial()
        done = journal.load() if journal is not None else {}
        for index, site in indexed_sites:
            with self.obs.span("site", domain=site.domain) as span:
                outcome = done.get(index)
                if outcome is not None:
                    span.set_tag("resumed", 1)
                    partial.fault_ledger.checkpoint_resumed += 1
                    if self.obs.enabled:
                        _replay_stage_spans(self.obs, getattr(outcome, "stage_spans", ()))
                else:
                    mark = len(self.obs.tracer.spans) if record_spans else 0
                    outcome = self._visit_site(browser, site)
                    if journal is not None:
                        if record_spans:
                            outcome = replace(
                                outcome,
                                stage_spans=_captured_stage_spans(
                                    self.obs.tracer.spans, mark
                                ),
                            )
                        journal.record(index, outcome)
                        partial.fault_ledger.checkpoint_recorded += 1
                if outcome.report.status != "ok":
                    span.set_tag("status", outcome.report.status)
                self._apply_outcome(partial, index, site, outcome)
            if progress is not None:
                progress.advance(
                    1,
                    failed=1 if outcome.report.status == "error" else 0,
                    faults=outcome.ledger.total_injected,
                    breakers_opened=outcome.ledger.breaker_opened,
                    breakers_closed=outcome.ledger.breaker_closed,
                )
        return partial

    def _visit_site(self, browser: HeadlessBrowser, site: SiteSpec) -> ChromeSiteOutcome:
        ledger = FaultLedger()
        page = browser.visit(f"http://www.{site.domain}/")
        with self.obs.span("detect"):
            report = self.detector.detect_page(site.domain, page)
        kinds = [FaultKind(value) for value in page.fault_events]
        for kind in kinds:
            ledger.record_injection(kind)
        # a page that still produced a capture recovered from its injected
        # faults (degraded is not failed); an error page did not
        ledger.settle(kinds, recovered=page.status != "error")
        if page.status == "error" and page.error_class:
            ledger.record_observed(ErrorClass(page.error_class))
        return ChromeSiteOutcome(report=report, ledger=ledger)

    def _apply_outcome(
        self,
        partial: ChromeRunPartial,
        index: int,
        site: SiteSpec,
        outcome: ChromeSiteOutcome,
    ) -> None:
        report = outcome.report
        partial.reports.append((index, report))
        if report.wasm_present:
            partial.total_wasm_sites += 1
        if report.is_miner:
            partial.miner_wasm_sites += 1
            partial.signature_counts[self._display_family(report.miner.family)] += 1
        if report.nocoin_hit:
            partial.nocoin_total += 1
            labels = self.rulespace.classify_domain(site.domain)
            if labels:
                partial.nocoin_categorized += 1
                partial.nocoin_categories.update(labels[:1])
        if report.is_miner:
            partial.signature_total += 1
            labels = self.rulespace.classify_domain(site.domain)
            if labels:
                partial.signature_categorized += 1
                partial.signature_categories.update(labels[:1])
        partial.fault_ledger.merge(outcome.ledger)
        if self.obs.enabled:
            # verdicts + detector.* counters placed here (not in the visit)
            # so resumed sites count identically to fresh ones
            if report.nocoin_hit:
                self.obs.inc("detector.nocoin.hits")
            if report.wasm_present:
                self.obs.inc("detector.wasm.sites")
            if report.is_miner:
                self.obs.inc("detector.wasm.miners")
                self.obs.inc(f"detector.wasm.method.{report.miner.method}")
            if report.nocoin_false_positive:
                self.obs.inc("detector.nocoin.false_positives")
            if report.nocoin_false_negative:
                self.obs.inc("detector.nocoin.false_negatives")
            record = VerdictRecord(
                subject=site.domain,
                dataset=self.population.spec.name,
                pipeline="chrome",
                status=report.status,
                nocoin_hit=report.nocoin_hit,
                wasm_present=report.wasm_present,
                is_miner=report.is_miner,
                family=report.miner.family if report.miner is not None else "",
                method=report.miner.method if report.miner is not None else "",
                confidence=(
                    report.miner.confidence if report.miner is not None else 0.0
                ),
                evidence=tuple(getattr(report, "evidence", ())),
            )
            partial.verdicts.append((index, record))
            add_verdict(
                partial.graph,
                record,
                site=site,
                includers=_includers_for(self.population, site),
            )

    def finalize_run(self, partial: ChromeRunPartial) -> ChromeCampaignResult:
        """Assemble Tables 1–3 from (possibly merged) tallies."""
        ordered = [report for _, report in sorted(partial.reports, key=lambda item: item[0])]
        return ChromeCampaignResult(
            dataset=self.population.spec.name,
            reports=ordered,
            signature_counts=_canonical_order(partial.signature_counts),
            total_wasm_sites=partial.total_wasm_sites,
            miner_wasm_sites=partial.miner_wasm_sites,
            cross_tab=cross_tabulate(ordered),
            nocoin_categories=_canonical_order(partial.nocoin_categories),
            nocoin_categorized_fraction=(
                partial.nocoin_categorized / partial.nocoin_total
                if partial.nocoin_total else 0.0
            ),
            signature_categories=_canonical_order(partial.signature_categories),
            signature_categorized_fraction=(
                partial.signature_categorized / partial.signature_total
                if partial.signature_total else 0.0
            ),
            verdicts=tuple(
                verdict
                for _, verdict in sorted(partial.verdicts, key=lambda item: item[0])
            ),
            graph=partial.graph if partial.graph else None,
        )

    def run(self) -> ChromeCampaignResult:
        return self.finalize_run(self.run_sites(enumerate(self.population.sites)))

    @staticmethod
    def _display_family(family: str) -> str:
        """Paper naming: the WebSocket-only class prints as UnknownWSS."""
        return "UnknownWSS" if family in ("unknown-wss", "unknown-miner") else family
