"""Visitor-side impact of browser mining (the paper's future work).

Section 6 of the paper: "the impact of the CPU intensive miner on a
website's performance, a mobile device's battery lifetime or a visitor's
energy bill is yet to be quantified but it could be a huge hurdle to be
competitive to ad-based financing on a larger scale."

This module quantifies exactly that, with a transparent first-order
model, and answers the paper's implicit comparison: what does a visitor
*pay* (in electricity) per dollar the site operator *earns*?

Model parameters are sourced from 2018-era measurements:

- a CryptoNight web miner drives the CPU package to ~25–45 W extra on
  desktops, ~2–4 W on phones,
- client hash rates: 20–100 H/s (the paper's bracket),
- Coinhive pays the operator 70% of mined XMR; at the paper's numbers
  (5.5 MH/s network-wide pool rate earning ~42 XMR/day ⇒ ~0.012 XMR per
  MH), a visitor-hour at 50 H/s earns the operator fractions of a cent,
- typical electricity price 0.12–0.30 USD/kWh; phone batteries hold
  10–15 Wh.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class DeviceProfile:
    """Power/performance profile of a visiting device."""

    name: str
    hash_rate: float            # H/s while mining, unthrottled
    mining_power_watts: float   # extra package power drawn by the miner
    idle_power_watts: float     # baseline while browsing
    battery_wh: float = 0.0     # 0 for mains-powered devices


DESKTOP_2013 = DeviceProfile(
    name="2013 laptop (the paper's 20 H/s reference)",
    hash_rate=20.0,
    mining_power_watts=30.0,
    idle_power_watts=10.0,
)
DESKTOP_2018 = DeviceProfile(
    name="2018 quad-core desktop",
    hash_rate=90.0,
    mining_power_watts=45.0,
    idle_power_watts=15.0,
)
PHONE_2018 = DeviceProfile(
    name="2018 Android phone",
    hash_rate=10.0,
    mining_power_watts=3.0,
    idle_power_watts=0.8,
    battery_wh=11.0,
)

#: Monero economics at the paper's observation point.
XMR_USD = 120.0
#: Network: 462 MH/s earns 720 blocks/day × 4.7 XMR ⇒ XMR per hash.
XMR_PER_HASH = (720 * 4.7) / (462e6 * 86400)
OPERATOR_REVENUE_SHARE = 0.70  # Coinhive pays out 70%


@dataclass(frozen=True)
class VisitImpact:
    """Impact of one mining visit on one device."""

    device: str
    duration_s: float
    throttle: float
    hashes: float
    energy_wh: float
    battery_fraction: float          # 0 for mains devices
    visitor_cost_usd: float
    operator_revenue_usd: float

    @property
    def transfer_efficiency(self) -> float:
        """Operator dollars earned per visitor dollar burned.

        Ads transfer advertiser money; mining transfers *visitor
        electricity* — this ratio is the paper's "huge hurdle" made
        concrete (typically ≪ 1).
        """
        if self.visitor_cost_usd == 0:
            return float("inf")
        return self.operator_revenue_usd / self.visitor_cost_usd


def visit_impact(
    device: DeviceProfile,
    duration_s: float,
    throttle: float = 0.0,
    electricity_usd_per_kwh: float = 0.20,
) -> VisitImpact:
    """Quantify one visit of ``duration_s`` seconds of mining.

    ``throttle`` is Coinhive's setThrottle semantics: fraction of time
    the miner sleeps (0 = full speed). Energy scales with throttle;
    hash output scales identically (CryptoNight is compute-bound).
    """
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    if not 0.0 <= throttle <= 1.0:
        raise ValueError("throttle must be within [0, 1]")
    active = 1.0 - throttle
    hashes = device.hash_rate * active * duration_s
    extra_watts = device.mining_power_watts * active
    energy_wh = extra_watts * duration_s / SECONDS_PER_HOUR
    battery_fraction = energy_wh / device.battery_wh if device.battery_wh else 0.0
    visitor_cost = energy_wh / 1000.0 * electricity_usd_per_kwh
    operator_revenue = hashes * XMR_PER_HASH * XMR_USD * OPERATOR_REVENUE_SHARE
    return VisitImpact(
        device=device.name,
        duration_s=duration_s,
        throttle=throttle,
        hashes=hashes,
        energy_wh=energy_wh,
        battery_fraction=min(1.0, battery_fraction),
        visitor_cost_usd=visitor_cost,
        operator_revenue_usd=operator_revenue,
    )


def battery_lifetime_hours(device: DeviceProfile, throttle: float = 0.0) -> float:
    """Hours until a full battery is drained by browsing+mining."""
    if not device.battery_wh:
        raise ValueError(f"{device.name} has no battery")
    draw = device.idle_power_watts + device.mining_power_watts * (1.0 - throttle)
    return device.battery_wh / draw


def ad_revenue_equivalent_minutes(
    device: DeviceProfile, cpm_usd: float = 2.0, throttle: float = 0.0
) -> float:
    """Minutes of mining needed to match ONE ad impression's revenue.

    A display-ad impression at ``cpm_usd`` CPM earns the operator
    cpm/1000 dollars. This is the paper's ad-alternative question in one
    number: how long must a visitor mine to be "worth" one ad?
    """
    if cpm_usd <= 0:
        raise ValueError("CPM must be positive")
    per_impression = cpm_usd / 1000.0
    revenue_per_second = (
        device.hash_rate * (1.0 - throttle) * XMR_PER_HASH * XMR_USD * OPERATOR_REVENUE_SHARE
    )
    if revenue_per_second == 0:
        return float("inf")
    return per_impression / revenue_per_second / 60.0
