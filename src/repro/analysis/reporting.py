"""Plain-text rendering of tables and figure summaries.

Benchmarks print these so a run regenerates the same rows/series as the
paper's tables and figures, directly comparable side by side.
"""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_histogram(
    bins: Sequence, counts: Sequence[int], title: str = "", width: int = 40
) -> str:
    """Horizontal ASCII histogram (one bar per bin)."""
    peak = max(counts) if counts else 1
    lines = [title] if title else []
    for label, count in zip(bins, counts):
        bar = "#" * max(0, round(width * count / peak)) if peak else ""
        lines.append(f"{str(label):>12}  {str(count):>8}  {bar}")
    return "\n".join(lines)


def render_cdf_points(values: Sequence[float], quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.67, 0.75, 0.9, 0.99)) -> str:
    """Quantile summary of an empirical distribution."""
    ordered = sorted(values)
    if not ordered:
        return "(empty)"
    lines = []
    for q in quantiles:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        lines.append(f"  p{int(q * 100):>2} = {ordered[index]}")
    return "\n".join(lines)


def format_quantity(value: float) -> str:
    """Human units: 55.4e9 → '55.4G', 5.5e6 → '5.5M'."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.1f}"


def render_day_hour_heatmap(matrix: dict, title: str = "") -> str:
    """Figure-5-style day × hour-of-day block map.

    ``matrix`` maps ``(date_string, hour)`` → count. Rows are dates,
    columns hours 0–23; cells print '.', digits, or '+' for ≥10.
    """
    dates = sorted({key[0] for key in matrix})
    lines = [title] if title else []
    lines.append("date        " + "".join(f"{h:>2}" for h in range(0, 24, 2)))
    for date in dates:
        cells = []
        for hour in range(24):
            count = matrix.get((date, hour), 0)
            if count == 0:
                cells.append(".")
            elif count < 10:
                cells.append(str(count))
            else:
                cells.append("+")
        total = sum(matrix.get((date, hour), 0) for hour in range(24))
        lines.append(f"{date}  {''.join(cells)}  | {total}")
    return "\n".join(lines)
