"""Generating block-list rules from crawl results.

The paper's conclusion is that static lists lag the ecosystem ("the public
NoCoin filter list [is] insufficient") while Wasm fingerprinting sees
through URL churn. The obvious operational consequence — feed the
fingerprint pipeline's findings *back into* a block list — is implemented
here:

1. run the Chrome campaign,
2. for every signature-detected miner page, emit Adblock rules for the
   observables a blocker can act on: the mining WebSocket endpoints and
   the Wasm/loader URLs,
3. measure how much of the signature-detected population the augmented
   list now covers.

This quantifies both the gain (most of the gap closes) and the structural
limit (first-party loaders on the site's own domain cannot be listed
without blocking the site itself — the residual is the fundamental
advantage of content-based detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.detector import DetectionReport
from repro.core.nocoin import FilterList, default_nocoin_list, parse_rule


def _host_of(url: str) -> str:
    return url.split("://", 1)[-1].split("/", 1)[0].lower()


@dataclass
class GeneratedRules:
    """Rules distilled from one crawl's miner reports."""

    websocket_hosts: set[str] = field(default_factory=set)
    third_party_script_hosts: set[str] = field(default_factory=set)
    skipped_first_party: int = 0

    def to_lines(self) -> list[str]:
        lines = [f"||{host}^" for host in sorted(self.websocket_hosts)]
        lines += [f"||{host}^" for host in sorted(self.third_party_script_hosts)]
        return lines

    def __len__(self) -> int:
        return len(self.websocket_hosts) + len(self.third_party_script_hosts)


def generate_rules(reports, site_domains: dict[str, str]) -> GeneratedRules:
    """Distill block rules from signature-detected miner reports.

    ``site_domains`` maps report.domain → the site's own host, so
    first-party assets (self-hosted loaders) are recognized and skipped —
    blocking them would block the site.
    """
    generated = GeneratedRules()
    for report in reports:
        if not report.is_miner:
            continue
        own_host = site_domains.get(report.domain, f"www.{report.domain}").lower()
        for ws_url in report.websocket_urls:
            generated.websocket_hosts.add(_host_of(ws_url))
        for script_url in getattr(report, "miner_script_urls", ()):  # optional detail
            host = _host_of(script_url)
            if host == own_host or host.endswith("." + own_host):
                generated.skipped_first_party += 1
            else:
                generated.third_party_script_hosts.add(host)
    return generated


def augmented_list(generated: GeneratedRules, base: FilterList = None) -> FilterList:
    """The NoCoin list plus the generated rules."""
    combined = base if base is not None else default_nocoin_list()
    for line in generated.to_lines():
        rule = parse_rule(line, label="generated")
        if rule is not None:
            combined.add(rule)
    return combined


@dataclass(frozen=True)
class CoverageComparison:
    """Before/after coverage of the miner population."""

    miners_total: int
    covered_by_base: int
    covered_by_augmented: int

    @property
    def base_missed_fraction(self) -> float:
        return 1 - self.covered_by_base / self.miners_total if self.miners_total else 0.0

    @property
    def augmented_missed_fraction(self) -> float:
        return 1 - self.covered_by_augmented / self.miners_total if self.miners_total else 0.0


def evaluate_coverage(reports, augmented: FilterList) -> CoverageComparison:
    """How many signature-detected miners would each list block?

    A miner page counts as *covered* when the list matches any of its
    observables: a script URL in its final HTML (already recorded in
    ``report.nocoin_hit`` for the base list) or one of its WebSocket
    endpoints (which blockers can also filter).
    """
    total = base = aug = 0
    for report in reports:
        if not report.is_miner:
            continue
        total += 1
        if report.nocoin_hit:
            base += 1
            aug += 1
            continue
        if any(augmented.match_url(url) for url in report.websocket_urls):
            aug += 1
    return CoverageComparison(
        miners_total=total, covered_by_base=base, covered_by_augmented=aug
    )
