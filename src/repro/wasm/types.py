"""Data model for WebAssembly modules (MVP subset).

The model mirrors the binary section layout: a :class:`Module` owns type,
import, function, memory, global, export, and code sections, plus the
``name`` custom section carrying function names (the decoder exposes those
because the paper's classifier uses function names as a feature).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


class ValType(enum.IntEnum):
    """WebAssembly value types with their binary encodings."""

    I32 = 0x7F
    I64 = 0x7E
    F32 = 0x7D
    F64 = 0x7C

    @classmethod
    def from_byte(cls, byte: int) -> "ValType":
        try:
            return cls(byte)
        except ValueError:
            raise ValueError(f"invalid valtype byte 0x{byte:02X}") from None


#: Block type: ``None`` encodes the empty type (0x40), otherwise a ValType.
BlockType = Optional[ValType]

#: Immediate operand values an instruction may carry.
Operand = Union[int, float, ValType, None, tuple]


@dataclass(frozen=True)
class Instr:
    """One decoded instruction: mnemonic plus immediate operands.

    ``operands`` layout per immediate kind (see :mod:`repro.wasm.opcodes`):

    - ``none``: ``()``
    - ``blocktype``: ``(BlockType,)``
    - ``u32``: ``(index,)``
    - ``u32x2``: ``(a, b)``
    - ``memarg``: ``(align, offset)``
    - ``i32``/``i64``: ``(value,)``
    - ``f32``/``f64``: ``(value,)``
    - ``br_table``: ``(labels_tuple, default_label)``
    """

    name: str
    operands: tuple = ()

    def __str__(self) -> str:
        if not self.operands:
            return self.name
        return f"{self.name} {' '.join(map(str, self.operands))}"


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result value types."""

    params: tuple = ()
    results: tuple = ()

    def __str__(self) -> str:
        ps = ", ".join(t.name.lower() for t in self.params)
        rs = ", ".join(t.name.lower() for t in self.results)
        return f"({ps}) -> ({rs})"


@dataclass(frozen=True)
class Limits:
    """Memory/table limits (min pages, optional max pages)."""

    minimum: int
    maximum: Optional[int] = None


@dataclass(frozen=True)
class Import:
    """An imported function/memory/global.

    ``kind`` is the binary external kind: 0 function, 2 memory, 3 global.
    For functions ``desc`` is a type index; for memories a :class:`Limits`;
    for globals a ``(ValType, mutable)`` pair.
    """

    module: str
    name: str
    kind: int
    desc: object


@dataclass(frozen=True)
class Export:
    """An exported item; ``kind``: 0 function, 2 memory, 3 global."""

    name: str
    kind: int
    index: int


@dataclass(frozen=True)
class Global:
    """A module-level global with a constant initializer."""

    valtype: ValType
    mutable: bool
    init: Instr


@dataclass
class CodeEntry:
    """One function body: local declarations plus the instruction stream.

    ``locals_`` is the compressed form used in the binary: a list of
    ``(count, ValType)`` runs. The final ``end`` instruction is represented
    explicitly as the last element of ``body``.
    """

    locals_: list = field(default_factory=list)
    body: list = field(default_factory=list)

    def expanded_locals(self) -> list:
        """Flatten ``(count, type)`` runs into one ValType per local."""
        out = []
        for count, valtype in self.locals_:
            out.extend([valtype] * count)
        return out


@dataclass
class Module:
    """A decoded (or to-be-encoded) WebAssembly module.

    ``func_type_indices[i]`` gives the type index for the i-th *local*
    function, whose body is ``codes[i]``. Function index space = imported
    functions first, then local functions (spec behaviour). ``func_names``
    maps *function-space* indices to names from the ``name`` custom section.
    """

    types: list = field(default_factory=list)
    imports: list = field(default_factory=list)
    func_type_indices: list = field(default_factory=list)
    memories: list = field(default_factory=list)
    globals_: list = field(default_factory=list)
    exports: list = field(default_factory=list)
    codes: list = field(default_factory=list)
    func_names: dict = field(default_factory=dict)
    module_name: Optional[str] = None

    def num_imported_funcs(self) -> int:
        return sum(1 for imp in self.imports if imp.kind == 0)

    def num_funcs(self) -> int:
        """Total size of the function index space."""
        return self.num_imported_funcs() + len(self.func_type_indices)

    def exported_func_names(self) -> list:
        return [e.name for e in self.exports if e.kind == 0]

    def all_function_names(self) -> list:
        """Names from the name section plus exported function names."""
        names = list(self.func_names.values())
        names.extend(self.exported_func_names())
        return names

    def iter_instructions(self):
        """Yield every instruction of every local function, in order."""
        for code in self.codes:
            yield from code.body
