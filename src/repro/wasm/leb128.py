"""LEB128 variable-length integer coding (WebAssembly spec, section 5.2.2).

WebAssembly uses unsigned LEB128 for sizes and indices and signed LEB128 for
integer constants. Both directions are implemented against a byte buffer with
an explicit offset so the decoder can stream through a module.
"""

from __future__ import annotations


class LEBError(ValueError):
    """Raised on malformed or truncated LEB128 data."""


def encode_u(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise LEBError(f"unsigned LEB128 cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s(value: int) -> bytes:
    """Encode a signed integer as signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7  # arithmetic shift: Python preserves the sign
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_u(data: bytes, offset: int, max_bits: int = 64) -> tuple[int, int]:
    """Decode unsigned LEB128 at ``offset``; returns ``(value, new_offset)``.

    ``max_bits`` bounds the encoding length as the spec does (ceil(N/7)
    bytes), protecting the decoder from non-terminating inputs.
    """
    result = 0
    shift = 0
    max_bytes = (max_bits + 6) // 7
    for i in range(max_bytes):
        if offset + i >= len(data):
            raise LEBError("truncated unsigned LEB128")
        byte = data[offset + i]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset + i + 1
        shift += 7
    raise LEBError(f"unsigned LEB128 exceeds {max_bits} bits")


def decode_s(data: bytes, offset: int, max_bits: int = 64) -> tuple[int, int]:
    """Decode signed LEB128 at ``offset``; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    max_bytes = (max_bits + 6) // 7
    for i in range(max_bytes):
        if offset + i >= len(data):
            raise LEBError("truncated signed LEB128")
        byte = data[offset + i]
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40 and shift < max_bits + 7:
                result -= 1 << shift
            return result, offset + i + 1
    raise LEBError(f"signed LEB128 exceeds {max_bits} bits")
