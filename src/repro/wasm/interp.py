"""A WebAssembly interpreter for the supported MVP subset.

The fingerprinting pipeline treats modules as data; this interpreter makes
them *programs* again. It exists for three reasons:

1. **Corpus validity** — the synthetic miner/benign modules are not just
   structurally well-formed, they execute: the tests run every corpus
   kernel to completion.
2. **Dynamic analysis** — an execution-based detector (count executed
   XORs/loads rather than static ones) is a natural extension of the
   paper's static method; see ``tests/test_wasm_interp.py``.
3. **Honesty of the substitution** — the paper dumped *runnable* miners;
   ours are runnable too.

Semantics follow the spec for the implemented subset: two's-complement
integer arithmetic with wrapping, unsigned/signed comparison variants,
trapping division, little-endian bounds-checked memory, and structured
control flow (block/loop/if with br/br_if/br_table).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.wasm.types import CodeEntry, Instr, Module, ValType

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1
PAGE_SIZE = 65536


class WasmTrap(RuntimeError):
    """Raised when execution traps (unreachable, div-by-zero, OOB, …)."""


class FuelExhausted(WasmTrap):
    """Raised when the instruction budget runs out (guards infinite loops)."""


def _signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def _rotl(value: int, count: int, bits: int) -> int:
    count %= bits
    mask = (1 << bits) - 1
    return ((value << count) | (value >> (bits - count))) & mask


@dataclass
class _Block:
    """One entry of the control stack."""

    kind: str          # block | loop | if
    start: int         # pc of the structured instruction
    end: int           # pc of the matching end
    else_: int = -1    # pc of else (if-blocks)
    stack_depth: int = 0


def _scan_blocks(body: list) -> dict:
    """Map each block/loop/if pc to its (end, else) pcs."""
    spans: dict = {}
    stack: list = []
    for pc, instr in enumerate(body):
        name = instr.name
        if name in ("block", "loop", "if"):
            stack.append([pc, -1])
        elif name == "else":
            if not stack:
                raise WasmTrap("else outside if")
            stack[-1][1] = pc
        elif name == "end":
            if stack:
                start, else_pc = stack.pop()
                spans[start] = (pc, else_pc)
            # the final end of the function has no opener; fine
    return spans


@dataclass
class Instance:
    """An instantiated module ready for invocation.

    ``imports`` maps ``(module, name)`` to host callables for imported
    functions. ``fuel`` bounds the number of executed instructions per
    invocation (the corpus kernels contain real loops).
    """

    module: Module
    imports: dict = field(default_factory=dict)
    fuel: int = 2_000_000
    memory: bytearray = field(default_factory=bytearray)
    globals_: list = field(default_factory=list)
    _spans_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.module.memories:
            self.memory = bytearray(self.module.memories[0].minimum * PAGE_SIZE)
        for glob in self.module.globals_:
            self.globals_.append(glob.init.operands[0] if glob.init.operands else 0)
        for imp in self.module.imports:
            if imp.kind == 0 and (imp.module, imp.name) not in self.imports:
                # default host stub: abort traps, anything else returns 0
                if imp.name == "abort":
                    self.imports[(imp.module, imp.name)] = _abort
                else:
                    self.imports[(imp.module, imp.name)] = lambda *args: 0

    # -- public API ---------------------------------------------------------------

    def invoke(self, export_name: str, *args) -> list:
        """Call an exported function by name; returns its results."""
        for export in self.module.exports:
            if export.kind == 0 and export.name == export_name:
                return self.invoke_index(export.index, *args)
        raise KeyError(f"no exported function {export_name!r}")

    def invoke_index(self, func_index: int, *args) -> list:
        """Call a function by function-space index."""
        budget = [self.fuel]
        return self._call(func_index, list(args), budget)

    # -- execution ----------------------------------------------------------------

    def _call(self, func_index: int, args: list, budget: list) -> list:
        num_imported = self.module.num_imported_funcs()
        if func_index < num_imported:
            imp = [i for i in self.module.imports if i.kind == 0][func_index]
            host = self.imports[(imp.module, imp.name)]
            result = host(*args)
            if result is None:
                return []
            return [result & _MASK32 if isinstance(result, int) else result]

        local_index = func_index - num_imported
        try:
            code: CodeEntry = self.module.codes[local_index]
            functype = self.module.types[self.module.func_type_indices[local_index]]
        except IndexError:
            raise WasmTrap(f"function index {func_index} out of range") from None
        locals_: list = list(args)
        while len(locals_) < len(functype.params):
            locals_.append(0)
        for valtype in code.expanded_locals():
            locals_.append(0.0 if valtype in (ValType.F32, ValType.F64) else 0)

        body = code.body
        if id(body) not in self._spans_cache:
            self._spans_cache[id(body)] = _scan_blocks(body)
        spans = self._spans_cache[id(body)]

        stack: list = []
        control: list = []
        pc = 0
        while pc < len(body):
            if budget[0] <= 0:
                raise FuelExhausted("instruction budget exhausted")
            budget[0] -= 1
            instr = body[pc]
            name = instr.name

            if name == "end":
                if control:
                    control.pop()
                pc += 1
                continue
            if name in ("block", "loop"):
                end, _ = spans[pc]
                control.append(_Block(name, pc, end, stack_depth=len(stack)))
                pc += 1
                continue
            if name == "if":
                end, else_pc = spans[pc]
                condition = stack.pop()
                control.append(_Block("if", pc, end, else_pc, stack_depth=len(stack)))
                if condition:
                    pc += 1
                elif else_pc != -1:
                    pc = else_pc + 1
                else:
                    control.pop()
                    pc = end + 1
                continue
            if name == "else":
                # reached from the then-branch: skip to end
                block = control.pop()
                pc = block.end + 1
                continue
            if name in ("br", "br_if", "br_table"):
                if name == "br_if":
                    if not stack.pop():
                        pc += 1
                        continue
                    depth = instr.operands[0]
                elif name == "br":
                    depth = instr.operands[0]
                else:  # br_table
                    labels, default = instr.operands
                    selector = stack.pop()
                    depth = labels[selector] if 0 <= selector < len(labels) else default
                if depth >= len(control):
                    return self._finish(stack, functype)
                target = control[len(control) - 1 - depth]
                del control[len(control) - depth:]
                if target.kind == "loop":
                    del stack[target.stack_depth:]
                    pc = target.start + 1
                else:
                    del stack[target.stack_depth:]
                    control.pop()
                    pc = target.end + 1
                continue
            if name == "return":
                return self._finish(stack, functype)
            if name == "call":
                target = instr.operands[0]
                callee_type = self._type_of(target)
                call_args = [stack.pop() for _ in callee_type.params][::-1]
                stack.extend(self._call(target, call_args, budget))
                pc += 1
                continue
            if name == "call_indirect":
                raise WasmTrap("call_indirect unsupported (no tables in subset)")
            if name == "unreachable":
                raise WasmTrap("unreachable executed")

            self._execute_simple(instr, stack, locals_)
            pc += 1

        return self._finish(stack, functype)

    def _finish(self, stack: list, functype) -> list:
        results = len(functype.results)
        if results == 0:
            return []
        if len(stack) < results:
            raise WasmTrap("stack underflow at function exit")
        return stack[-results:]

    def _type_of(self, func_index: int):
        num_imported = self.module.num_imported_funcs()
        if func_index < num_imported:
            imp = [i for i in self.module.imports if i.kind == 0][func_index]
            return self.module.types[imp.desc]
        return self.module.types[self.module.func_type_indices[func_index - num_imported]]

    # -- memory -------------------------------------------------------------------

    def _mem_slice(self, addr: int, offset: int, size: int) -> int:
        effective = addr + offset
        if effective < 0 or effective + size > len(self.memory):
            raise WasmTrap(f"out-of-bounds memory access at {effective}")
        return effective

    def _load(self, addr: int, offset: int, size: int) -> int:
        start = self._mem_slice(addr, offset, size)
        return int.from_bytes(self.memory[start : start + size], "little")

    def _store(self, addr: int, offset: int, size: int, value: int) -> None:
        start = self._mem_slice(addr, offset, size)
        self.memory[start : start + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    # -- the straight-line instructions --------------------------------------------

    def _execute_simple(self, instr: Instr, stack: list, locals_: list) -> None:
        name = instr.name
        ops = instr.operands

        if name == "nop":
            return
        if name == "drop":
            stack.pop()
            return
        if name == "select":
            condition = stack.pop()
            b = stack.pop()
            a = stack.pop()
            stack.append(a if condition else b)
            return
        if name == "local.get":
            stack.append(locals_[ops[0]])
            return
        if name == "local.set":
            locals_[ops[0]] = stack.pop()
            return
        if name == "local.tee":
            locals_[ops[0]] = stack[-1]
            return
        if name == "global.get":
            stack.append(self.globals_[ops[0]])
            return
        if name == "global.set":
            self.globals_[ops[0]] = stack.pop()
            return
        if name == "i32.const":
            stack.append(ops[0] & _MASK32)
            return
        if name == "i64.const":
            stack.append(ops[0] & _MASK64)
            return
        if name in ("f32.const", "f64.const"):
            stack.append(ops[0])
            return
        if name == "memory.size":
            stack.append(len(self.memory) // PAGE_SIZE)
            return
        if name == "memory.grow":
            delta = stack.pop()
            old_pages = len(self.memory) // PAGE_SIZE
            limit = self.module.memories[0].maximum if self.module.memories else None
            if limit is not None and old_pages + delta > limit:
                stack.append(_MASK32)  # -1: growth refused
            else:
                self.memory.extend(bytes(delta * PAGE_SIZE))
                stack.append(old_pages)
            return

        if "." in name:
            prefix, op = name.split(".", 1)
            if op.startswith("load"):
                self._exec_load(prefix, op, ops, stack)
                return
            if op.startswith("store"):
                self._exec_store(prefix, op, ops, stack)
                return
            if prefix in ("i32", "i64"):
                self._exec_int(prefix, op, stack)
                return
            if prefix in ("f32", "f64"):
                self._exec_float(prefix, op, stack)
                return
        raise WasmTrap(f"unsupported instruction {name}")

    def _exec_load(self, prefix: str, op: str, ops: tuple, stack: list) -> None:
        addr = stack.pop()
        _align, offset = ops
        bits = 32 if prefix == "i32" else 64
        if prefix in ("f32", "f64"):
            size = 4 if prefix == "f32" else 8
            raw = self._load(addr, offset, size)
            fmt = "<f" if prefix == "f32" else "<d"
            stack.append(struct.unpack(fmt, raw.to_bytes(size, "little"))[0])
            return
        if op in ("load",):
            size, signed = bits // 8, False
        else:
            width = int("".join(ch for ch in op if ch.isdigit()))
            size = width // 8
            signed = op.endswith("_s")
        value = self._load(addr, offset, size)
        if signed:
            value = _signed(value, size * 8) & ((1 << bits) - 1)
        stack.append(value & ((1 << bits) - 1))

    def _exec_store(self, prefix: str, op: str, ops: tuple, stack: list) -> None:
        value = stack.pop()
        addr = stack.pop()
        _align, offset = ops
        if prefix in ("f32", "f64"):
            fmt = "<f" if prefix == "f32" else "<d"
            raw = struct.pack(fmt, value)
            size = len(raw)
            self._store(addr, offset, size, int.from_bytes(raw, "little"))
            return
        if op == "store":
            size = 4 if prefix == "i32" else 8
        else:
            size = int("".join(ch for ch in op if ch.isdigit())) // 8
        self._store(addr, offset, size, value)

    def _exec_int(self, prefix: str, op: str, stack: list) -> None:
        bits = 32 if prefix == "i32" else 64
        mask = (1 << bits) - 1

        unary = {
            "eqz": lambda a: int(a == 0),
            "clz": lambda a: bits if a == 0 else bits - a.bit_length(),
            "ctz": lambda a: bits if a == 0 else (a & -a).bit_length() - 1,
            "popcnt": lambda a: bin(a).count("1"),
            "wrap_i64": lambda a: a & _MASK32,
            "extend_i32_s": lambda a: _signed(a, 32) & _MASK64,
            "extend_i32_u": lambda a: a & _MASK64,
            "reinterpret_f32": lambda a: struct.unpack("<I", struct.pack("<f", a))[0],
            "reinterpret_f64": lambda a: struct.unpack("<Q", struct.pack("<d", a))[0],
        }
        if op in unary:
            stack.append(unary[op](stack.pop()) & mask)
            return

        b = stack.pop()
        a = stack.pop()
        sa, sb = _signed(a, bits), _signed(b, bits)
        if op == "add":
            result = a + b
        elif op == "sub":
            result = a - b
        elif op == "mul":
            result = a * b
        elif op == "div_u":
            if b == 0:
                raise WasmTrap("integer divide by zero")
            result = a // b
        elif op == "div_s":
            if b == 0:
                raise WasmTrap("integer divide by zero")
            result = int(math.trunc(sa / sb)) if sb else 0
        elif op == "rem_u":
            if b == 0:
                raise WasmTrap("integer divide by zero")
            result = a % b
        elif op == "rem_s":
            if b == 0:
                raise WasmTrap("integer divide by zero")
            result = sa - sb * int(math.trunc(sa / sb))
        elif op == "and":
            result = a & b
        elif op == "or":
            result = a | b
        elif op == "xor":
            result = a ^ b
        elif op == "shl":
            result = a << (b % bits)
        elif op == "shr_u":
            result = a >> (b % bits)
        elif op == "shr_s":
            result = sa >> (b % bits)
        elif op == "rotl":
            result = _rotl(a, b, bits)
        elif op == "rotr":
            result = _rotl(a, bits - (b % bits), bits)
        elif op == "eq":
            result = int(a == b)
        elif op == "ne":
            result = int(a != b)
        elif op == "lt_u":
            result = int(a < b)
        elif op == "lt_s":
            result = int(sa < sb)
        elif op == "gt_u":
            result = int(a > b)
        elif op == "gt_s":
            result = int(sa > sb)
        elif op == "le_u":
            result = int(a <= b)
        elif op == "le_s":
            result = int(sa <= sb)
        elif op == "ge_u":
            result = int(a >= b)
        elif op == "ge_s":
            result = int(sa >= sb)
        else:
            raise WasmTrap(f"unsupported integer op {prefix}.{op}")
        stack.append(result & mask)

    def _exec_float(self, prefix: str, op: str, stack: list) -> None:
        unary = {
            "abs": abs,
            "neg": lambda a: -a,
            "sqrt": lambda a: math.sqrt(a) if a >= 0 else math.nan,
            "demote_f64": lambda a: struct.unpack("<f", struct.pack("<f", a))[0],
            "promote_f32": lambda a: a,
        }
        if op in unary:
            stack.append(unary[op](stack.pop()))
            return
        b = stack.pop()
        a = stack.pop()
        if op == "add":
            stack.append(a + b)
        elif op == "sub":
            stack.append(a - b)
        elif op == "mul":
            stack.append(a * b)
        elif op == "div":
            stack.append(a / b if b != 0 else math.inf if a > 0 else -math.inf if a < 0 else math.nan)
        elif op in ("eq", "ne", "lt", "gt", "le", "ge"):
            table: dict = {
                "eq": a == b, "ne": a != b, "lt": a < b,
                "gt": a > b, "le": a <= b, "ge": a >= b,
            }
            stack.append(int(table[op]))
        else:
            raise WasmTrap(f"unsupported float op {prefix}.{op}")


def _abort(*_args) -> None:
    raise WasmTrap("abort called")


def execute_exported(module_bytes: bytes, export: str, *args, fuel: int = 2_000_000):
    """Decode, instantiate, and invoke in one call (convenience)."""
    from repro.wasm.decoder import decode_module

    instance = Instance(decode_module(module_bytes), fuel=fuel)
    return instance.invoke(export, *args)
