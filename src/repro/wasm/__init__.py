"""WebAssembly binary-format substrate.

The paper's fingerprinting method operates on raw ``.wasm`` binaries dumped
by an instrumented browser: it splits a module into its function bodies,
hashes them in strict order, and extracts distinguishing features such as the
number of XOR, shift, and load instructions or tell-tale exported function
names (Section 3.2 of the paper).

To exercise that method end-to-end we implement a real (subset) WebAssembly
binary toolchain:

- :mod:`repro.wasm.leb128` — variable-length integer coding.
- :mod:`repro.wasm.opcodes` — the opcode table with immediate kinds.
- :mod:`repro.wasm.types` — module/section data model.
- :mod:`repro.wasm.encoder` — module → ``bytes`` (spec section layout,
  including the ``name`` custom section).
- :mod:`repro.wasm.decoder` — ``bytes`` → module.
- :mod:`repro.wasm.validator` — structural validation.
- :mod:`repro.wasm.builder` — generator of synthetic miner and benign
  modules (the ~160-variant corpus standing in for the dead 2018 miners).
"""

from repro.wasm.types import (
    CodeEntry,
    Export,
    FuncType,
    Global,
    Import,
    Instr,
    Limits,
    Module,
    ValType,
)
from repro.wasm.encoder import encode_module
from repro.wasm.decoder import decode_module, WasmDecodeError
from repro.wasm.validator import validate_module, WasmValidationError
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder
from repro.wasm.interp import Instance, WasmTrap, execute_exported
from repro.wasm.wat import disassemble

__all__ = [
    "Instance",
    "WasmTrap",
    "execute_exported",
    "disassemble",
    "CodeEntry",
    "Export",
    "FuncType",
    "Global",
    "Import",
    "Instr",
    "Limits",
    "Module",
    "ValType",
    "encode_module",
    "decode_module",
    "WasmDecodeError",
    "validate_module",
    "WasmValidationError",
    "ModuleBlueprint",
    "WasmCorpusBuilder",
]
