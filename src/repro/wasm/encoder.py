"""WebAssembly module encoder (binary format, MVP subset).

Produces spec-conformant binaries: magic/version header, sections in
ascending ID order, LEB128-sized contents, and a trailing ``name`` custom
section carrying module and function names when present.
"""

from __future__ import annotations

import struct

from repro.wasm import leb128, opcodes
from repro.wasm.types import CodeEntry, Export, FuncType, Global, Import, Instr, Limits, Module, ValType

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

# Section IDs (spec 5.5.2)
SEC_CUSTOM = 0
SEC_TYPE = 1
SEC_IMPORT = 2
SEC_FUNCTION = 3
SEC_MEMORY = 5
SEC_GLOBAL = 6
SEC_EXPORT = 7
SEC_CODE = 10


def _name(text: str) -> bytes:
    raw = text.encode("utf-8")
    return leb128.encode_u(len(raw)) + raw


def _vec(items: list) -> bytes:
    return leb128.encode_u(len(items)) + b"".join(items)


def _limits(limits: Limits) -> bytes:
    if limits.maximum is None:
        return b"\x00" + leb128.encode_u(limits.minimum)
    return b"\x01" + leb128.encode_u(limits.minimum) + leb128.encode_u(limits.maximum)


def encode_instr(instr: Instr) -> bytes:
    """Encode a single instruction (opcode byte plus immediates)."""
    spec = opcodes.BY_NAME.get(instr.name)
    if spec is None:
        raise ValueError(f"unknown instruction {instr.name!r}")
    out = bytearray([spec.code])
    kind = spec.immediate
    ops = instr.operands
    if kind == "none":
        pass
    elif kind == "blocktype":
        blocktype = ops[0]
        out.append(0x40 if blocktype is None else int(blocktype))
    elif kind == "u32":
        out += leb128.encode_u(ops[0])
    elif kind == "u32x2":
        out += leb128.encode_u(ops[0]) + leb128.encode_u(ops[1])
    elif kind == "memarg":
        out += leb128.encode_u(ops[0]) + leb128.encode_u(ops[1])
    elif kind == "i32":
        out += leb128.encode_s(_wrap_signed(ops[0], 32))
    elif kind == "i64":
        out += leb128.encode_s(_wrap_signed(ops[0], 64))
    elif kind == "f32":
        out += struct.pack("<f", ops[0])
    elif kind == "f64":
        out += struct.pack("<d", ops[0])
    elif kind == "br_table":
        labels, default = ops
        out += leb128.encode_u(len(labels))
        for label in labels:
            out += leb128.encode_u(label)
        out += leb128.encode_u(default)
    else:  # pragma: no cover - table is closed
        raise AssertionError(f"unhandled immediate kind {kind}")
    return bytes(out)


def _wrap_signed(value: int, bits: int) -> int:
    """Wrap an arbitrary int into the signed range of ``bits`` width."""
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def encode_expr(body: list) -> bytes:
    """Encode an instruction sequence; appends ``end`` if missing."""
    out = bytearray()
    for instr in body:
        out += encode_instr(instr)
    if not body or body[-1].name != "end":
        out += encode_instr(Instr("end"))
    return bytes(out)


def _functype(functype: FuncType) -> bytes:
    out = bytearray([0x60])
    out += leb128.encode_u(len(functype.params))
    out += bytes(int(t) for t in functype.params)
    out += leb128.encode_u(len(functype.results))
    out += bytes(int(t) for t in functype.results)
    return bytes(out)


def _import(imp: Import) -> bytes:
    out = bytearray()
    out += _name(imp.module)
    out += _name(imp.name)
    out.append(imp.kind)
    if imp.kind == 0:  # function: type index
        out += leb128.encode_u(imp.desc)
    elif imp.kind == 2:  # memory: limits
        out += _limits(imp.desc)
    elif imp.kind == 3:  # global: valtype + mutability
        valtype, mutable = imp.desc
        out.append(int(valtype))
        out.append(1 if mutable else 0)
    else:
        raise ValueError(f"unsupported import kind {imp.kind}")
    return bytes(out)


def _global(glob: Global) -> bytes:
    out = bytearray([int(glob.valtype), 1 if glob.mutable else 0])
    out += encode_expr([glob.init])
    return bytes(out)


def _export(export: Export) -> bytes:
    return _name(export.name) + bytes([export.kind]) + leb128.encode_u(export.index)


def _code(code: CodeEntry) -> bytes:
    body = bytearray()
    body += leb128.encode_u(len(code.locals_))
    for count, valtype in code.locals_:
        body += leb128.encode_u(count)
        body.append(int(valtype))
    body += encode_expr(code.body)
    return leb128.encode_u(len(body)) + bytes(body)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + leb128.encode_u(len(payload)) + payload


def _name_section(module: Module) -> bytes:
    """Build the ``name`` custom section (module + function name subsections)."""
    payload = bytearray(_name("name"))
    if module.module_name is not None:
        sub = _name(module.module_name)
        payload += bytes([0]) + leb128.encode_u(len(sub)) + sub
    if module.func_names:
        entries = []
        for index in sorted(module.func_names):
            entries.append(leb128.encode_u(index) + _name(module.func_names[index]))
        sub = _vec(entries)
        payload += bytes([1]) + leb128.encode_u(len(sub)) + sub
    return _section(SEC_CUSTOM, bytes(payload))


def encode_module(module: Module) -> bytes:
    """Serialize a :class:`Module` to WebAssembly binary format."""
    out = bytearray(MAGIC + VERSION)
    if module.types:
        out += _section(SEC_TYPE, _vec([_functype(t) for t in module.types]))
    if module.imports:
        out += _section(SEC_IMPORT, _vec([_import(i) for i in module.imports]))
    if module.func_type_indices:
        out += _section(
            SEC_FUNCTION,
            _vec([leb128.encode_u(i) for i in module.func_type_indices]),
        )
    if module.memories:
        out += _section(SEC_MEMORY, _vec([_limits(m) for m in module.memories]))
    if module.globals_:
        out += _section(SEC_GLOBAL, _vec([_global(g) for g in module.globals_]))
    if module.exports:
        out += _section(SEC_EXPORT, _vec([_export(e) for e in module.exports]))
    if module.codes:
        out += _section(SEC_CODE, _vec([_code(c) for c in module.codes]))
    if module.func_names or module.module_name is not None:
        out += _name_section(module)
    return bytes(out)
