"""Synthetic WebAssembly module corpus.

Coinhive and its clones are dead, so the reproduction generates a corpus of
structurally authentic modules standing in for the ~160 distinct assemblies
the paper catalogued (Section 3.2). Two properties matter for fidelity:

1. **Determinism** — a blueprint (family, variant) always produces the exact
   same bytes, so the SHA-256 function-body signature of the paper's method
   is stable, and distinct variants produce distinct signatures.
2. **Realistic feature profiles** — miner families emit CryptoNight-style
   code (XOR/shift/rotate/load heavy, large linear memory for the 2 MB
   scratchpad, AES-like round loops, telltale function names); benign
   families (games, codecs, math libraries) emit float-heavy or mixed code.
   The paper's classifier keys on exactly these features, so the corpus must
   separate along them the way real 2018 binaries did.

The builder is used by :mod:`repro.internet` to equip synthetic websites and
by the tests/benchmarks to exercise the fingerprint pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.rng import RngStream
from repro.wasm.encoder import encode_module
from repro.wasm.types import CodeEntry, Export, FuncType, Import, Instr, Limits, Module, ValType


@dataclass(frozen=True)
class FamilyProfile:
    """Code-generation profile for one Wasm family.

    ``is_miner`` marks ground truth used by the evaluation harness.
    ``xor_weight``/``shift_weight``/``load_weight``/``float_weight`` steer
    the instruction mix; ``scratchpad_pages`` sizes linear memory (a real
    CryptoNight miner needs ≥32 × 64 KiB pages for its 2 MB scratchpad).
    """

    name: str
    is_miner: bool
    xor_weight: float
    shift_weight: float
    load_weight: float
    store_weight: float
    float_weight: float
    arith_weight: float
    scratchpad_pages: int
    function_names: tuple = ()
    export_names: tuple = ()
    backend: Optional[str] = None  # WebSocket backend associated with the family
    num_variants: int = 8
    rounds_per_function: int = 12


#: Miner families observed by the paper (Table 1 + Section 3.1) and benign
#: families that real crawls encounter (games, codecs, math, media).
FAMILY_PROFILES: dict[str, FamilyProfile] = {}


def _register(profile: FamilyProfile) -> FamilyProfile:
    FAMILY_PROFILES[profile.name] = profile
    return profile


COINHIVE = _register(
    FamilyProfile(
        name="coinhive",
        is_miner=True,
        xor_weight=0.24,
        shift_weight=0.18,
        load_weight=0.22,
        store_weight=0.12,
        float_weight=0.0,
        arith_weight=0.24,
        scratchpad_pages=33,
        function_names=("cryptonight_hash", "cn_slow_hash", "keccak_f1600", "aes_round", "_ZN9coinhive"),
        export_names=("_cryptonight_create", "_cryptonight_hash", "_cryptonight_destroy"),
        backend="wss://ws%d.coinhive.com/proxy",
        num_variants=40,
        rounds_per_function=16,
    )
)

AUTHEDMINE = _register(
    FamilyProfile(
        name="authedmine",
        is_miner=True,
        xor_weight=0.24,
        shift_weight=0.18,
        load_weight=0.22,
        store_weight=0.12,
        float_weight=0.0,
        arith_weight=0.24,
        scratchpad_pages=33,
        function_names=("cryptonight_hash", "cn_slow_hash", "keccak_f1600", "aes_round"),
        export_names=("_cryptonight_create", "_cryptonight_hash"),
        backend="wss://ws%d.authedmine.com/proxy",
        num_variants=8,
        rounds_per_function=16,
    )
)

CRYPTOLOOT = _register(
    FamilyProfile(
        name="cryptoloot",
        is_miner=True,
        xor_weight=0.22,
        shift_weight=0.20,
        load_weight=0.20,
        store_weight=0.13,
        float_weight=0.0,
        arith_weight=0.25,
        scratchpad_pages=33,
        function_names=("cn_hash", "crloot_hash", "keccak", "skein_256"),
        export_names=("_crloot_hash", "_crloot_init"),
        backend="wss://webmine.crypto-loot.com/ws%d",
        num_variants=18,
        rounds_per_function=14,
    )
)

SKENCITUER = _register(
    FamilyProfile(
        name="skencituer",
        is_miner=True,
        xor_weight=0.26,
        shift_weight=0.16,
        load_weight=0.21,
        store_weight=0.12,
        float_weight=0.0,
        arith_weight=0.25,
        scratchpad_pages=32,
        function_names=("sken_mix", "sken_round", "blake_compress"),
        export_names=("_work", "_init"),
        backend="wss://skencituer.com/socket%d",
        num_variants=10,
        rounds_per_function=12,
    )
)

WEBSTATIBID = _register(
    FamilyProfile(
        name="web.stati.bid",
        is_miner=True,
        xor_weight=0.23,
        shift_weight=0.19,
        load_weight=0.20,
        store_weight=0.13,
        float_weight=0.0,
        arith_weight=0.25,
        scratchpad_pages=32,
        function_names=("cn_lite", "statibid_hash", "groestl_512"),
        export_names=("_hash", "_reset"),
        backend="wss://web.stati.bid/pool%d",
        num_variants=8,
        rounds_per_function=12,
    )
)

FREECONTENT = _register(
    FamilyProfile(
        name="freecontent.date",
        is_miner=True,
        xor_weight=0.25,
        shift_weight=0.17,
        load_weight=0.21,
        store_weight=0.12,
        float_weight=0.0,
        arith_weight=0.25,
        scratchpad_pages=32,
        function_names=("fc_mix", "cn_round", "jh_hash"),
        export_names=("_fc_hash",),
        backend="wss://freecontent.date/w%d",
        num_variants=8,
        rounds_per_function=12,
    )
)

NOTGIVEN688 = _register(
    FamilyProfile(
        name="notgiven688",
        is_miner=True,
        xor_weight=0.27,
        shift_weight=0.15,
        load_weight=0.22,
        store_weight=0.11,
        float_weight=0.0,
        arith_weight=0.25,
        scratchpad_pages=32,
        # deliberately stripped names: this family hides function names,
        # exercising the instruction-mix path of the classifier
        function_names=(),
        export_names=("a", "b", "c"),
        backend="wss://notgiven688.webminepool.com/ws%d",
        num_variants=10,
        rounds_per_function=13,
    )
)

WPMONERO = _register(
    FamilyProfile(
        name="wp-monero",
        is_miner=True,
        xor_weight=0.23,
        shift_weight=0.18,
        load_weight=0.21,
        store_weight=0.13,
        float_weight=0.0,
        arith_weight=0.25,
        scratchpad_pages=32,
        function_names=("wpmm_hash", "cn_slow_hash"),
        export_names=("_wpmm_hash",),
        backend="wss://wp-monero-miner.de/ws%d",
        num_variants=8,
        rounds_per_function=12,
    )
)

JSMINER = _register(
    FamilyProfile(
        name="jsminer",
        is_miner=True,
        xor_weight=0.20,
        shift_weight=0.22,
        load_weight=0.18,
        store_weight=0.12,
        float_weight=0.0,
        arith_weight=0.28,
        scratchpad_pages=4,  # Bitcoin SHA-256: no scratchpad
        function_names=("sha256_transform", "mine_block"),
        export_names=("_sha256",),
        backend="wss://jsminer.example/ws%d",
        num_variants=4,
        rounds_per_function=10,
    )
)

UNKNOWN_WSS = _register(
    FamilyProfile(
        name="unknown-wss",
        is_miner=True,
        xor_weight=0.25,
        shift_weight=0.18,
        load_weight=0.21,
        store_weight=0.12,
        float_weight=0.0,
        arith_weight=0.24,
        scratchpad_pages=32,
        function_names=(),
        export_names=("f0", "f1"),
        backend="wss://%d.unknown-pool.net/ws",
        num_variants=12,
        rounds_per_function=12,
    )
)

# -- benign families ---------------------------------------------------------

GAME_ENGINE = _register(
    FamilyProfile(
        name="game-engine",
        is_miner=False,
        xor_weight=0.02,
        shift_weight=0.05,
        load_weight=0.15,
        store_weight=0.10,
        float_weight=0.45,
        arith_weight=0.23,
        scratchpad_pages=16,
        function_names=("physics_step", "vec3_dot", "update_entities", "render_frame"),
        export_names=("_main_loop", "_on_frame"),
        num_variants=16,
        rounds_per_function=10,
    )
)

VIDEO_CODEC = _register(
    FamilyProfile(
        name="video-codec",
        is_miner=False,
        xor_weight=0.04,
        shift_weight=0.14,
        load_weight=0.28,
        store_weight=0.22,
        float_weight=0.12,
        arith_weight=0.20,
        scratchpad_pages=24,
        function_names=("idct_8x8", "decode_macroblock", "yuv_to_rgb"),
        export_names=("_decode_frame",),
        num_variants=12,
        rounds_per_function=12,
    )
)

MATH_LIB = _register(
    FamilyProfile(
        name="math-lib",
        is_miner=False,
        xor_weight=0.01,
        shift_weight=0.03,
        load_weight=0.12,
        store_weight=0.08,
        float_weight=0.56,
        arith_weight=0.20,
        scratchpad_pages=2,
        function_names=("matmul", "fft_radix2", "solve_lu"),
        export_names=("_matmul", "_fft"),
        num_variants=10,
        rounds_per_function=8,
    )
)

IMAGE_FILTER = _register(
    FamilyProfile(
        name="image-filter",
        is_miner=False,
        xor_weight=0.03,
        shift_weight=0.10,
        load_weight=0.30,
        store_weight=0.24,
        float_weight=0.08,
        arith_weight=0.25,
        scratchpad_pages=16,
        function_names=("gaussian_blur", "convolve_3x3", "resize_bilinear"),
        export_names=("_apply_filter",),
        num_variants=8,
        rounds_per_function=10,
    )
)

COMPRESSION = _register(
    FamilyProfile(
        name="compression",
        is_miner=False,
        # zlib-style code has real shift/xor density (CRC32!) but almost no
        # rotates and a small memory footprint — the hard negative for the
        # instruction-mix classifier.
        xor_weight=0.12,
        shift_weight=0.16,
        load_weight=0.24,
        store_weight=0.18,
        float_weight=0.0,
        arith_weight=0.30,
        scratchpad_pages=8,
        function_names=("inflate_block", "crc32_update", "huffman_decode"),
        export_names=("_inflate", "_deflate"),
        num_variants=8,
        rounds_per_function=10,
    )
)


MINER_FAMILIES = tuple(p.name for p in FAMILY_PROFILES.values() if p.is_miner)
BENIGN_FAMILIES = tuple(p.name for p in FAMILY_PROFILES.values() if not p.is_miner)


@dataclass(frozen=True)
class ModuleBlueprint:
    """Identifies one concrete assembly: a family plus a variant number.

    Variants model the "versions of the conceptually same miner" the paper
    found: each variant differs in code-generation seed (and therefore
    signature) while keeping the family's feature profile.
    """

    family: str
    variant: int

    def profile(self) -> FamilyProfile:
        return FAMILY_PROFILES[self.family]

    @property
    def label(self) -> str:
        return f"{self.family}/v{self.variant}"


def all_blueprints() -> list:
    """Every (family, variant) pair in the corpus — the ~160 assemblies."""
    blueprints = []
    for profile in FAMILY_PROFILES.values():
        for variant in range(profile.num_variants):
            blueprints.append(ModuleBlueprint(profile.name, variant))
    return blueprints


@dataclass
class WasmCorpusBuilder:
    """Deterministic generator of the module corpus.

    Modules are cached by blueprint so repeated site visits serve identical
    bytes, exactly as a CDN-served ``cryptonight.wasm`` would.
    """

    root_seed: int = 2018
    _cache: dict = field(default_factory=dict, repr=False)

    def build(self, blueprint: ModuleBlueprint) -> bytes:
        """Return the encoded module bytes for ``blueprint`` (cached)."""
        if blueprint not in self._cache:
            self._cache[blueprint] = encode_module(self.build_module(blueprint))
        return self._cache[blueprint]

    def build_module(self, blueprint: ModuleBlueprint) -> Module:
        """Construct the (unencoded) :class:`Module` for ``blueprint``."""
        profile = blueprint.profile()
        rng = RngStream(self.root_seed, "wasm", blueprint.family, str(blueprint.variant))

        num_functions = 4 + rng.randint(0, 3)
        module = Module()
        module.types = [
            FuncType((ValType.I32, ValType.I32), (ValType.I32,)),
            FuncType((ValType.I32,), ()),
            FuncType((), (ValType.I32,)),
        ]
        # One imported environment function, as emscripten output has.
        module.imports = [Import("env", "abort", 0, 1)]
        module.memories = [Limits(profile.scratchpad_pages, profile.scratchpad_pages * 2)]
        module.func_type_indices = [0] * num_functions
        module.codes = [
            self._gen_function(profile, rng.substream(f"fn{i}"), i) for i in range(num_functions)
        ]

        num_imported = module.num_imported_funcs()
        for i, export_name in enumerate(profile.export_names):
            if i >= num_functions:
                break
            module.exports.append(Export(export_name, 0, num_imported + i))
        module.exports.append(Export("memory", 2, 0))

        # name section: most families ship names (emscripten debug builds);
        # stripped families have an empty tuple and get no name section.
        for i, fn_name in enumerate(profile.function_names):
            if i >= num_functions:
                break
            module.func_names[num_imported + i] = fn_name
        return module

    # -- code generation -----------------------------------------------------

    def _gen_function(self, profile: FamilyProfile, rng: RngStream, index: int) -> CodeEntry:
        """Emit one function: a bounded loop of profile-weighted rounds.

        The shape mimics compiled hash/compute kernels: locals initialized
        from parameters, a counted loop whose body is straight-line
        arithmetic over locals and linear memory, and a result return.
        """
        num_locals = 4 + rng.randint(0, 4)
        body: list[Instr] = []
        # init locals from params and constants
        body.append(Instr("local.get", (0,)))
        body.append(Instr("local.set", (2,)))
        body.append(Instr("local.get", (1,)))
        body.append(Instr("local.set", (3,)))
        for local in range(4, 2 + num_locals):
            body.append(Instr("i32.const", (rng.getrandbits(31),)))
            body.append(Instr("local.set", (local,)))

        body.append(Instr("block", (None,)))
        body.append(Instr("loop", (None,)))
        rounds = profile.rounds_per_function + rng.randint(0, 4)
        for _ in range(rounds):
            body.extend(self._gen_round(profile, rng, num_locals))
        # loop bookkeeping: decrement counter in local 2, branch while non-zero
        body.append(Instr("local.get", (2,)))
        body.append(Instr("i32.const", (1,)))
        body.append(Instr("i32.sub", ()))
        body.append(Instr("local.tee", (2,)))
        body.append(Instr("i32.eqz", ()))
        body.append(Instr("br_if", (1,)))
        body.append(Instr("br", (0,)))
        body.append(Instr("end"))  # loop
        body.append(Instr("end"))  # block
        body.append(Instr("local.get", (3,)))
        body.append(Instr("end"))

        return CodeEntry(locals_=[(num_locals, ValType.I32)], body=body)

    def _gen_round(self, profile: FamilyProfile, rng: RngStream, num_locals: int) -> list:
        """One profile-weighted operation: load/store/bitop/arith/float."""
        kinds = ("xor", "shift", "load", "store", "float", "arith")
        weights = (
            profile.xor_weight,
            profile.shift_weight,
            profile.load_weight,
            profile.store_weight,
            profile.float_weight,
            profile.arith_weight,
        )
        kind = rng.choices(kinds, weights)[0]
        # local 2 is the loop counter: rounds may read it but never write it,
        # or the kernel would not terminate (the interpreter tests execute
        # every corpus function)
        local_a = 3 + rng.randint(0, num_locals - 2)
        local_b = 3 + rng.randint(0, num_locals - 2)
        # compiled hash kernels chain several stack ops before spilling to a
        # local; benign code spills almost immediately
        chain = rng.randint(2, 4) if profile.is_miner else 1
        out: list[Instr] = []
        if kind == "xor":
            out.append(Instr("local.get", (local_a,)))
            out.append(Instr("local.get", (local_b,)))
            out.append(Instr("i32.xor", ()))
            for _ in range(chain - 1):
                if rng.random() < 0.45:
                    # CryptoNight interleaves XOR with rotates
                    out.append(Instr("i32.const", (rng.randint(1, 31),)))
                    out.append(Instr("i32.rotl" if rng.random() < 0.5 else "i32.rotr", ()))
                else:
                    out.append(Instr("local.get", (2 + rng.randint(0, num_locals - 1),)))
                    out.append(Instr("i32.xor", ()))
            out.append(Instr("local.set", (local_a,)))
        elif kind == "shift":
            op = rng.choice(("i32.shl", "i32.shr_u", "i32.shr_s"))
            out.append(Instr("local.get", (local_a,)))
            out.append(Instr("i32.const", (rng.randint(1, 31),)))
            out.append(Instr(op, ()))
            for _ in range(chain - 1):
                out.append(Instr("i32.const", (rng.randint(1, 31),)))
                out.append(Instr(rng.choice(("i32.shl", "i32.shr_u", "i32.rotl")), ()))
            out.append(Instr("local.set", (local_a,)))
        elif kind == "load":
            op = rng.choice(("i32.load", "i32.load", "i32.load8_u", "i64.load"))
            offset = rng.randint(0, 4096) & ~0x3
            out.append(Instr("local.get", (local_a,)))
            out.append(Instr("i32.const", (profile.scratchpad_pages * 65536 - 4096 - 8,)))
            out.append(Instr("i32.rem_u", ()))
            if op.startswith("i64"):
                out.append(Instr(op, (3, offset)))
                out.append(Instr("i32.wrap_i64", ()))
            else:
                out.append(Instr(op, (2, offset)))
            out.append(Instr("local.set", (local_b,)))
        elif kind == "store":
            offset = rng.randint(0, 4096) & ~0x3
            out.append(Instr("local.get", (local_a,)))
            out.append(Instr("i32.const", (profile.scratchpad_pages * 65536 - 4096 - 8,)))
            out.append(Instr("i32.rem_u", ()))
            out.append(Instr("local.get", (local_b,)))
            out.append(Instr("i32.store", (2, offset)))
        elif kind == "float":
            op = rng.choice(("f64.add", "f64.mul", "f64.sub", "f64.div", "f64.sqrt"))
            # keep the float op self-contained: constants in, i32 out
            out = [
                Instr("f64.const", (rng.uniform(0.0, 1.0),)),
                Instr("f64.const", (rng.uniform(0.5, 2.0),)),
            ]
            if op == "f64.sqrt":
                out = out[:1]
                out.append(Instr("f64.sqrt", ()))
            else:
                out.append(Instr(op, ()))
            out.append(Instr("i64.reinterpret_f64", ()))
            out.append(Instr("i32.wrap_i64", ()))
            out.append(Instr("local.set", (local_a,)))
        else:  # arith
            op = rng.choice(("i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or"))
            out.append(Instr("local.get", (local_a,)))
            out.append(Instr("local.get", (local_b,)))
            out.append(Instr(op, ()))
            out.append(Instr("local.set", (local_a,)))
        return out
