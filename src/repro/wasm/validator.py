"""Structural validation for decoded modules.

Full type-checking of WebAssembly is out of scope; what the crawling
pipeline needs is a fast plausibility check that separates well-formed
modules from garbage bytes that happen to start with the magic number.
The validator checks index-space consistency, export targets, control-flow
nesting, and local/global references.
"""

from __future__ import annotations

from repro.wasm.types import Module


class WasmValidationError(ValueError):
    """Raised when a decoded module is structurally inconsistent."""


def validate_module(module: Module) -> None:
    """Validate structural invariants; raises :class:`WasmValidationError`."""
    num_types = len(module.types)
    for i, type_index in enumerate(module.func_type_indices):
        if type_index >= num_types:
            raise WasmValidationError(
                f"function {i} references type {type_index} of {num_types}"
            )
    for imp in module.imports:
        if imp.kind == 0 and imp.desc >= num_types:
            raise WasmValidationError(
                f"import {imp.module}.{imp.name} references type {imp.desc}"
            )

    num_funcs = module.num_funcs()
    num_globals = len(module.globals_) + sum(
        1 for imp in module.imports if imp.kind == 3
    )
    num_memories = len(module.memories) + sum(
        1 for imp in module.imports if imp.kind == 2
    )
    if num_memories > 1:
        raise WasmValidationError("MVP allows at most one memory")

    for export in module.exports:
        if export.kind == 0 and export.index >= num_funcs:
            raise WasmValidationError(f"export {export.name!r} references function {export.index}")
        if export.kind == 2 and export.index >= num_memories:
            raise WasmValidationError(f"export {export.name!r} references memory {export.index}")
        if export.kind == 3 and export.index >= num_globals:
            raise WasmValidationError(f"export {export.name!r} references global {export.index}")

    num_imported = module.num_imported_funcs()
    for func_index, code in enumerate(module.codes):
        num_locals = len(module.types[module.func_type_indices[func_index]].params) + sum(
            count for count, _ in code.locals_
        )
        _validate_body(code, func_index, num_locals, num_funcs, num_globals)
    # name-section indices must lie in the function index space
    for index in module.func_names:
        if index >= num_funcs:
            raise WasmValidationError(f"name section references function {index}")
    del num_imported  # index-space arithmetic documented above


def _validate_body(code, func_index: int, num_locals: int, num_funcs: int, num_globals: int) -> None:
    depth = 0
    saw_final_end = False
    for instr in code.body:
        if saw_final_end:
            raise WasmValidationError(f"function {func_index}: code after final end")
        name = instr.name
        if name in ("block", "loop", "if"):
            depth += 1
        elif name == "end":
            if depth == 0:
                saw_final_end = True
            else:
                depth -= 1
        elif name == "else":
            if depth == 0:
                raise WasmValidationError(f"function {func_index}: else outside if")
        elif name in ("br", "br_if"):
            if instr.operands[0] > depth:
                raise WasmValidationError(
                    f"function {func_index}: branch depth {instr.operands[0]} exceeds nesting {depth}"
                )
        elif name == "br_table":
            labels, default = instr.operands
            for label in (*labels, default):
                if label > depth:
                    raise WasmValidationError(
                        f"function {func_index}: br_table label {label} exceeds nesting {depth}"
                    )
        elif name in ("local.get", "local.set", "local.tee"):
            if instr.operands[0] >= num_locals:
                raise WasmValidationError(
                    f"function {func_index}: local {instr.operands[0]} of {num_locals}"
                )
        elif name in ("global.get", "global.set"):
            if instr.operands[0] >= num_globals:
                raise WasmValidationError(
                    f"function {func_index}: global {instr.operands[0]} of {num_globals}"
                )
        elif name == "call":
            if instr.operands[0] >= num_funcs:
                raise WasmValidationError(
                    f"function {func_index}: call target {instr.operands[0]} of {num_funcs}"
                )
    if not saw_final_end:
        raise WasmValidationError(f"function {func_index}: missing final end")
