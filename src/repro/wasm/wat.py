"""WebAssembly text-format (WAT-style) printing.

The paper built its signature database "through manual inspection of the
Wasm"; inspecting binaries needs a disassembler. This prints decoded
modules in a readable, WAT-flavoured form (folded types, indented bodies)
— not guaranteed to round-trip through an external ``wat2wasm``, but exact
about instructions and immediates.
"""

from __future__ import annotations

from repro.wasm.types import CodeEntry, FuncType, Instr, Module, ValType

_VALNAMES = {ValType.I32: "i32", ValType.I64: "i64", ValType.F32: "f32", ValType.F64: "f64"}


def _format_type(functype: FuncType) -> str:
    parts = []
    if functype.params:
        parts.append("(param " + " ".join(_VALNAMES[t] for t in functype.params) + ")")
    if functype.results:
        parts.append("(result " + " ".join(_VALNAMES[t] for t in functype.results) + ")")
    return " ".join(parts)


def _format_instr(instr: Instr) -> str:
    name = instr.name
    ops = instr.operands
    if not ops:
        return name
    if name in ("block", "loop", "if"):
        blocktype = ops[0]
        return name if blocktype is None else f"{name} (result {_VALNAMES[blocktype]})"
    if name == "br_table":
        labels, default = ops
        return f"br_table {' '.join(map(str, labels))} {default}"
    if name.endswith((".load", ".store")) or ".load" in name or ".store" in name:
        align, offset = ops
        suffix = []
        if offset:
            suffix.append(f"offset={offset}")
        if align:
            suffix.append(f"align={1 << align}")
        return f"{name} {' '.join(suffix)}".rstrip()
    return f"{name} {' '.join(map(str, ops))}"


def print_function(module: Module, index: int) -> str:
    """WAT text of one local function (0-based local index)."""
    code: CodeEntry = module.codes[index]
    functype = module.types[module.func_type_indices[index]]
    func_space_index = module.num_imported_funcs() + index
    name = module.func_names.get(func_space_index)
    header = f"(func ${name}" if name else f"(func (;{func_space_index};)"
    header += f" {_format_type(functype)}".rstrip()
    lines = [header]
    locals_ = code.expanded_locals()
    if locals_:
        lines.append("  (local " + " ".join(_VALNAMES[t] for t in locals_) + ")")
    depth = 1
    for instr in code.body[:-1]:  # final end closes the func
        if instr.name in ("end", "else"):
            depth = max(1, depth - 1)
        lines.append("  " * depth + _format_instr(instr))
        if instr.name in ("block", "loop", "if", "else"):
            depth += 1
    lines.append(")")
    return "\n".join(lines)


def print_module(module: Module, max_functions: int = None) -> str:
    """WAT text of a whole module."""
    lines = ["(module" + (f" ${module.module_name}" if module.module_name else "")]
    for i, functype in enumerate(module.types):
        lines.append(f"  (type (;{i};) (func {_format_type(functype)}))".replace("  )", ")"))
    for imp in module.imports:
        kind = {0: "func", 2: "memory", 3: "global"}.get(imp.kind, "?")
        lines.append(f'  (import "{imp.module}" "{imp.name}" ({kind}))')
    for limits in module.memories:
        maximum = f" {limits.maximum}" if limits.maximum is not None else ""
        lines.append(f"  (memory {limits.minimum}{maximum})")
    count = len(module.codes) if max_functions is None else min(max_functions, len(module.codes))
    for i in range(count):
        body = print_function(module, i)
        lines.extend("  " + line for line in body.splitlines())
    if max_functions is not None and count < len(module.codes):
        lines.append(f"  ;; … {len(module.codes) - count} more functions")
    for export in module.exports:
        kind = {0: "func", 2: "memory", 3: "global"}.get(export.kind, "?")
        lines.append(f'  (export "{export.name}" ({kind} {export.index}))')
    lines.append(")")
    return "\n".join(lines)


def disassemble(wasm_bytes: bytes, max_functions: int = None) -> str:
    """Decode and print in one call."""
    from repro.wasm.decoder import decode_module

    return print_module(decode_module(wasm_bytes), max_functions=max_functions)
