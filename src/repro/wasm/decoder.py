"""WebAssembly module decoder (binary format, MVP subset).

The decoder is the foundation of the paper's fingerprinting method: the
instrumented browser dumps raw ``.wasm`` bytes, and the analysis pipeline
needs the ordered function bodies (for the SHA-256 signature), the
instruction streams (for the XOR/shift/load feature counts), and the
function names (for the name-based hints).

The decoder is deliberately defensive: crawled binaries may be truncated or
adversarial, so every read is bounds-checked and all failures surface as
:class:`WasmDecodeError` rather than raw exceptions.
"""

from __future__ import annotations

import struct

from repro.wasm import leb128, opcodes
from repro.wasm.encoder import MAGIC, VERSION
from repro.wasm.types import (
    CodeEntry,
    Export,
    FuncType,
    Global,
    Import,
    Instr,
    Limits,
    Module,
    ValType,
)


class WasmDecodeError(ValueError):
    """Raised when the input is not a well-formed module (for our subset)."""


class _Reader:
    """Bounds-checked cursor over the module bytes."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, pos: int = 0, end: int | None = None) -> None:
        self.data = data
        self.pos = pos
        self.end = len(data) if end is None else end

    def remaining(self) -> int:
        return self.end - self.pos

    def byte(self) -> int:
        if self.pos >= self.end:
            raise WasmDecodeError("unexpected end of module")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def bytes_(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise WasmDecodeError("unexpected end of module")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u32(self) -> int:
        try:
            value, self.pos = leb128.decode_u(self.data, self.pos, max_bits=32)
        except leb128.LEBError as exc:
            raise WasmDecodeError(str(exc)) from exc
        if self.pos > self.end:
            raise WasmDecodeError("LEB128 ran past section end")
        return value

    def s32(self) -> int:
        try:
            value, self.pos = leb128.decode_s(self.data, self.pos, max_bits=32)
        except leb128.LEBError as exc:
            raise WasmDecodeError(str(exc)) from exc
        return value

    def s64(self) -> int:
        try:
            value, self.pos = leb128.decode_s(self.data, self.pos, max_bits=64)
        except leb128.LEBError as exc:
            raise WasmDecodeError(str(exc)) from exc
        return value

    def name(self) -> str:
        length = self.u32()
        raw = self.bytes_(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WasmDecodeError("invalid UTF-8 in name") from exc

    def valtype(self) -> ValType:
        byte = self.byte()
        try:
            return ValType.from_byte(byte)
        except ValueError as exc:
            raise WasmDecodeError(str(exc)) from exc

    def limits(self) -> Limits:
        flag = self.byte()
        if flag == 0x00:
            return Limits(self.u32())
        if flag == 0x01:
            return Limits(self.u32(), self.u32())
        raise WasmDecodeError(f"invalid limits flag 0x{flag:02X}")


def decode_instr(reader: _Reader) -> Instr:
    """Decode one instruction at the reader cursor."""
    code = reader.byte()
    try:
        spec = opcodes.spec_for(code)
    except KeyError as exc:
        raise WasmDecodeError(str(exc)) from exc
    kind = spec.immediate
    if kind == "none":
        return Instr(spec.name)
    if kind == "blocktype":
        byte = reader.byte()
        blocktype = None if byte == 0x40 else ValType.from_byte(byte)
        return Instr(spec.name, (blocktype,))
    if kind == "u32":
        return Instr(spec.name, (reader.u32(),))
    if kind == "u32x2":
        return Instr(spec.name, (reader.u32(), reader.u32()))
    if kind == "memarg":
        return Instr(spec.name, (reader.u32(), reader.u32()))
    if kind == "i32":
        return Instr(spec.name, (reader.s32(),))
    if kind == "i64":
        return Instr(spec.name, (reader.s64(),))
    if kind == "f32":
        return Instr(spec.name, (struct.unpack("<f", reader.bytes_(4))[0],))
    if kind == "f64":
        return Instr(spec.name, (struct.unpack("<d", reader.bytes_(8))[0],))
    if kind == "br_table":
        count = reader.u32()
        labels = tuple(reader.u32() for _ in range(count))
        return Instr(spec.name, (labels, reader.u32()))
    raise AssertionError(f"unhandled immediate kind {kind}")  # pragma: no cover


def decode_expr(reader: _Reader) -> list:
    """Decode instructions until the matching top-level ``end``."""
    depth = 0
    body: list[Instr] = []
    while True:
        instr = decode_instr(reader)
        body.append(instr)
        if instr.name in ("block", "loop", "if"):
            depth += 1
        elif instr.name == "end":
            if depth == 0:
                return body
            depth -= 1


def _decode_functype(reader: _Reader) -> FuncType:
    tag = reader.byte()
    if tag != 0x60:
        raise WasmDecodeError(f"functype must start with 0x60, got 0x{tag:02X}")
    params = tuple(reader.valtype() for _ in range(reader.u32()))
    results = tuple(reader.valtype() for _ in range(reader.u32()))
    return FuncType(params, results)


def _decode_import(reader: _Reader) -> Import:
    module = reader.name()
    name = reader.name()
    kind = reader.byte()
    if kind == 0:
        desc: object = reader.u32()
    elif kind == 2:
        desc = reader.limits()
    elif kind == 3:
        desc = (reader.valtype(), bool(reader.byte()))
    else:
        raise WasmDecodeError(f"unsupported import kind {kind}")
    return Import(module, name, kind, desc)


def _decode_global(reader: _Reader) -> Global:
    valtype = reader.valtype()
    mutable = bool(reader.byte())
    expr = decode_expr(reader)
    if len(expr) != 2:
        raise WasmDecodeError("global initializer must be a single const + end")
    return Global(valtype, mutable, expr[0])


def _decode_code(reader: _Reader) -> CodeEntry:
    size = reader.u32()
    body_end = reader.pos + size
    if body_end > reader.end:
        raise WasmDecodeError("code entry runs past section end")
    sub = _Reader(reader.data, reader.pos, body_end)
    locals_: list[tuple[int, ValType]] = []
    for _ in range(sub.u32()):
        count = sub.u32()
        locals_.append((count, sub.valtype()))
    body = decode_expr(sub)
    if sub.pos != body_end:
        raise WasmDecodeError("trailing bytes after function body")
    reader.pos = body_end
    return CodeEntry(locals_=locals_, body=body)


def _decode_name_section(reader: _Reader, module: Module) -> None:
    """Parse module-name (id 0) and function-name (id 1) subsections."""
    while reader.remaining() > 0:
        sub_id = reader.byte()
        size = reader.u32()
        sub_end = reader.pos + size
        if sub_end > reader.end:
            raise WasmDecodeError("name subsection runs past section end")
        sub = _Reader(reader.data, reader.pos, sub_end)
        if sub_id == 0:
            module.module_name = sub.name()
        elif sub_id == 1:
            for _ in range(sub.u32()):
                index = sub.u32()
                module.func_names[index] = sub.name()
        # other subsections (locals etc.) are skipped
        reader.pos = sub_end


def decode_module(data: bytes) -> Module:
    """Decode WebAssembly binary ``data`` into a :class:`Module`.

    Raises :class:`WasmDecodeError` for anything malformed, truncated, or
    outside the supported MVP subset.
    """
    if len(data) < 8:
        raise WasmDecodeError("module shorter than header")
    if data[:4] != MAGIC:
        raise WasmDecodeError("bad magic: not a wasm module")
    if data[4:8] != VERSION:
        raise WasmDecodeError(f"unsupported wasm version {data[4:8]!r}")

    module = Module()
    reader = _Reader(data, 8)
    last_id = 0
    while reader.remaining() > 0:
        section_id = reader.byte()
        size = reader.u32()
        section_end = reader.pos + size
        if section_end > reader.end:
            raise WasmDecodeError("section runs past end of module")
        if section_id != 0:
            if section_id <= last_id:
                raise WasmDecodeError(
                    f"section id {section_id} out of order (after {last_id})"
                )
            last_id = section_id
        sub = _Reader(reader.data, reader.pos, section_end)
        if section_id == 0:
            custom_name = sub.name()
            if custom_name == "name":
                _decode_name_section(sub, module)
        elif section_id == 1:
            module.types = [_decode_functype(sub) for _ in range(sub.u32())]
        elif section_id == 2:
            module.imports = [_decode_import(sub) for _ in range(sub.u32())]
        elif section_id == 3:
            module.func_type_indices = [sub.u32() for _ in range(sub.u32())]
        elif section_id == 5:
            module.memories = [sub.limits() for _ in range(sub.u32())]
        elif section_id == 6:
            module.globals_ = [_decode_global(sub) for _ in range(sub.u32())]
        elif section_id == 7:
            module.exports = [
                Export(sub.name(), sub.byte(), sub.u32()) for _ in range(sub.u32())
            ]
        elif section_id == 10:
            module.codes = [_decode_code(sub) for _ in range(sub.u32())]
        else:
            # tolerated-but-ignored sections (table/start/element/data)
            pass
        reader.pos = section_end

    if len(module.codes) != len(module.func_type_indices):
        raise WasmDecodeError(
            f"function section declares {len(module.func_type_indices)} functions "
            f"but code section has {len(module.codes)} bodies"
        )
    return module


def function_body_bytes(data: bytes) -> list:
    """Return the raw encoded bytes of each function body, in module order.

    This is what the paper's signature method hashes: the function bodies
    "combined in a strict order". Re-encoding decoded bodies would lose
    byte-level quirks, so we slice the original binary instead.
    """
    if len(data) < 8 or data[:4] != MAGIC:
        raise WasmDecodeError("not a wasm module")
    reader = _Reader(data, 8)
    bodies: list[bytes] = []
    while reader.remaining() > 0:
        section_id = reader.byte()
        size = reader.u32()
        section_end = reader.pos + size
        if section_end > reader.end:
            raise WasmDecodeError("section runs past end of module")
        if section_id == 10:
            sub = _Reader(reader.data, reader.pos, section_end)
            for _ in range(sub.u32()):
                body_size = sub.u32()
                bodies.append(sub.bytes_(body_size))
        reader.pos = section_end
    return bodies
