"""WebAssembly MVP opcode table.

Each opcode carries the *kind* of immediate it takes, which is all the
decoder needs to walk an instruction stream. The subset covers everything the
2018-era miner binaries used heavily (integer arithmetic, bit operations,
memory traffic, and structured control flow) plus the common rest of the MVP
integer/float instruction set.

Immediate kinds:

``none``       no immediate
``blocktype``  one byte (0x40 empty or a valtype)
``u32``        one unsigned LEB128 index (locals, globals, functions, labels)
``u32x2``      two unsigned LEB128 values (call_indirect, memory.size/grow)
``memarg``     align + offset, both unsigned LEB128
``i32``        one signed LEB128 (32-bit constant)
``i64``        one signed LEB128 (64-bit constant)
``f32``        4 little-endian bytes
``f64``        8 little-endian bytes
``br_table``   vector of labels + default label
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    code: int
    name: str
    immediate: str  # one of the immediate kinds documented above


_OPS: list[OpSpec] = [
    # Control instructions
    OpSpec(0x00, "unreachable", "none"),
    OpSpec(0x01, "nop", "none"),
    OpSpec(0x02, "block", "blocktype"),
    OpSpec(0x03, "loop", "blocktype"),
    OpSpec(0x04, "if", "blocktype"),
    OpSpec(0x05, "else", "none"),
    OpSpec(0x0B, "end", "none"),
    OpSpec(0x0C, "br", "u32"),
    OpSpec(0x0D, "br_if", "u32"),
    OpSpec(0x0E, "br_table", "br_table"),
    OpSpec(0x0F, "return", "none"),
    OpSpec(0x10, "call", "u32"),
    OpSpec(0x11, "call_indirect", "u32x2"),
    # Parametric
    OpSpec(0x1A, "drop", "none"),
    OpSpec(0x1B, "select", "none"),
    # Variable
    OpSpec(0x20, "local.get", "u32"),
    OpSpec(0x21, "local.set", "u32"),
    OpSpec(0x22, "local.tee", "u32"),
    OpSpec(0x23, "global.get", "u32"),
    OpSpec(0x24, "global.set", "u32"),
    # Memory
    OpSpec(0x28, "i32.load", "memarg"),
    OpSpec(0x29, "i64.load", "memarg"),
    OpSpec(0x2A, "f32.load", "memarg"),
    OpSpec(0x2B, "f64.load", "memarg"),
    OpSpec(0x2C, "i32.load8_s", "memarg"),
    OpSpec(0x2D, "i32.load8_u", "memarg"),
    OpSpec(0x2E, "i32.load16_s", "memarg"),
    OpSpec(0x2F, "i32.load16_u", "memarg"),
    OpSpec(0x30, "i64.load8_s", "memarg"),
    OpSpec(0x31, "i64.load8_u", "memarg"),
    OpSpec(0x32, "i64.load16_s", "memarg"),
    OpSpec(0x33, "i64.load16_u", "memarg"),
    OpSpec(0x34, "i64.load32_s", "memarg"),
    OpSpec(0x35, "i64.load32_u", "memarg"),
    OpSpec(0x36, "i32.store", "memarg"),
    OpSpec(0x37, "i64.store", "memarg"),
    OpSpec(0x38, "f32.store", "memarg"),
    OpSpec(0x39, "f64.store", "memarg"),
    OpSpec(0x3A, "i32.store8", "memarg"),
    OpSpec(0x3B, "i32.store16", "memarg"),
    OpSpec(0x3C, "i64.store8", "memarg"),
    OpSpec(0x3D, "i64.store16", "memarg"),
    OpSpec(0x3E, "i64.store32", "memarg"),
    OpSpec(0x3F, "memory.size", "u32"),
    OpSpec(0x40, "memory.grow", "u32"),
    # Constants
    OpSpec(0x41, "i32.const", "i32"),
    OpSpec(0x42, "i64.const", "i64"),
    OpSpec(0x43, "f32.const", "f32"),
    OpSpec(0x44, "f64.const", "f64"),
    # i32 comparison
    OpSpec(0x45, "i32.eqz", "none"),
    OpSpec(0x46, "i32.eq", "none"),
    OpSpec(0x47, "i32.ne", "none"),
    OpSpec(0x48, "i32.lt_s", "none"),
    OpSpec(0x49, "i32.lt_u", "none"),
    OpSpec(0x4A, "i32.gt_s", "none"),
    OpSpec(0x4B, "i32.gt_u", "none"),
    OpSpec(0x4C, "i32.le_s", "none"),
    OpSpec(0x4D, "i32.le_u", "none"),
    OpSpec(0x4E, "i32.ge_s", "none"),
    OpSpec(0x4F, "i32.ge_u", "none"),
    # i64 comparison
    OpSpec(0x50, "i64.eqz", "none"),
    OpSpec(0x51, "i64.eq", "none"),
    OpSpec(0x52, "i64.ne", "none"),
    OpSpec(0x53, "i64.lt_s", "none"),
    OpSpec(0x54, "i64.lt_u", "none"),
    OpSpec(0x55, "i64.gt_s", "none"),
    OpSpec(0x56, "i64.gt_u", "none"),
    OpSpec(0x57, "i64.le_s", "none"),
    OpSpec(0x58, "i64.le_u", "none"),
    OpSpec(0x59, "i64.ge_s", "none"),
    OpSpec(0x5A, "i64.ge_u", "none"),
    # f32/f64 comparison (subset used by codec-style benign modules)
    OpSpec(0x5B, "f32.eq", "none"),
    OpSpec(0x5C, "f32.ne", "none"),
    OpSpec(0x5D, "f32.lt", "none"),
    OpSpec(0x5E, "f32.gt", "none"),
    OpSpec(0x61, "f64.eq", "none"),
    OpSpec(0x62, "f64.ne", "none"),
    OpSpec(0x63, "f64.lt", "none"),
    OpSpec(0x64, "f64.gt", "none"),
    # i32 arithmetic / bitwise
    OpSpec(0x67, "i32.clz", "none"),
    OpSpec(0x68, "i32.ctz", "none"),
    OpSpec(0x69, "i32.popcnt", "none"),
    OpSpec(0x6A, "i32.add", "none"),
    OpSpec(0x6B, "i32.sub", "none"),
    OpSpec(0x6C, "i32.mul", "none"),
    OpSpec(0x6D, "i32.div_s", "none"),
    OpSpec(0x6E, "i32.div_u", "none"),
    OpSpec(0x6F, "i32.rem_s", "none"),
    OpSpec(0x70, "i32.rem_u", "none"),
    OpSpec(0x71, "i32.and", "none"),
    OpSpec(0x72, "i32.or", "none"),
    OpSpec(0x73, "i32.xor", "none"),
    OpSpec(0x74, "i32.shl", "none"),
    OpSpec(0x75, "i32.shr_s", "none"),
    OpSpec(0x76, "i32.shr_u", "none"),
    OpSpec(0x77, "i32.rotl", "none"),
    OpSpec(0x78, "i32.rotr", "none"),
    # i64 arithmetic / bitwise
    OpSpec(0x79, "i64.clz", "none"),
    OpSpec(0x7A, "i64.ctz", "none"),
    OpSpec(0x7B, "i64.popcnt", "none"),
    OpSpec(0x7C, "i64.add", "none"),
    OpSpec(0x7D, "i64.sub", "none"),
    OpSpec(0x7E, "i64.mul", "none"),
    OpSpec(0x7F, "i64.div_s", "none"),
    OpSpec(0x80, "i64.div_u", "none"),
    OpSpec(0x81, "i64.rem_s", "none"),
    OpSpec(0x82, "i64.rem_u", "none"),
    OpSpec(0x83, "i64.and", "none"),
    OpSpec(0x84, "i64.or", "none"),
    OpSpec(0x85, "i64.xor", "none"),
    OpSpec(0x86, "i64.shl", "none"),
    OpSpec(0x87, "i64.shr_s", "none"),
    OpSpec(0x88, "i64.shr_u", "none"),
    OpSpec(0x89, "i64.rotl", "none"),
    OpSpec(0x8A, "i64.rotr", "none"),
    # float arithmetic (subset)
    OpSpec(0x8B, "f32.abs", "none"),
    OpSpec(0x8C, "f32.neg", "none"),
    OpSpec(0x91, "f32.sqrt", "none"),
    OpSpec(0x92, "f32.add", "none"),
    OpSpec(0x93, "f32.sub", "none"),
    OpSpec(0x94, "f32.mul", "none"),
    OpSpec(0x95, "f32.div", "none"),
    OpSpec(0x99, "f64.abs", "none"),
    OpSpec(0x9A, "f64.neg", "none"),
    OpSpec(0x9F, "f64.sqrt", "none"),
    OpSpec(0xA0, "f64.add", "none"),
    OpSpec(0xA1, "f64.sub", "none"),
    OpSpec(0xA2, "f64.mul", "none"),
    OpSpec(0xA3, "f64.div", "none"),
    # conversions (subset)
    OpSpec(0xA7, "i32.wrap_i64", "none"),
    OpSpec(0xAC, "i64.extend_i32_s", "none"),
    OpSpec(0xAD, "i64.extend_i32_u", "none"),
    OpSpec(0xB6, "f32.demote_f64", "none"),
    OpSpec(0xBB, "f64.promote_f32", "none"),
    OpSpec(0xBC, "i32.reinterpret_f32", "none"),
    OpSpec(0xBD, "i64.reinterpret_f64", "none"),
]

#: opcode byte -> OpSpec
BY_CODE: dict[int, OpSpec] = {spec.code: spec for spec in _OPS}
#: mnemonic -> OpSpec
BY_NAME: dict[str, OpSpec] = {spec.name: spec for spec in _OPS}

#: Instruction-name groups used by the fingerprint feature extractor.
XOR_OPS = frozenset({"i32.xor", "i64.xor"})
SHIFT_OPS = frozenset(
    {"i32.shl", "i32.shr_s", "i32.shr_u", "i64.shl", "i64.shr_s", "i64.shr_u"}
)
ROTATE_OPS = frozenset({"i32.rotl", "i32.rotr", "i64.rotl", "i64.rotr"})
LOAD_OPS = frozenset(name for name in BY_NAME if ".load" in name)
STORE_OPS = frozenset(name for name in BY_NAME if ".store" in name)
MUL_OPS = frozenset({"i32.mul", "i64.mul"})
FLOAT_OPS = frozenset(name for name in BY_NAME if name.startswith(("f32.", "f64.")))


def spec_for(code: int) -> OpSpec:
    """Look up the :class:`OpSpec` for an opcode byte."""
    try:
        return BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown or unsupported opcode 0x{code:02X}") from None
