"""Module transforms modelling miner-evasion techniques.

The paper's signature method had to survive a moving target: operators
stripped metadata, rebuilt, and re-hosted their miners to dodge lists and
signatures. This module collects the transforms the benchmarks and tests
use to probe each detector's robustness:

- :func:`strip_names` — remove the name section and anonymize exports
  (defeats name-hint detection, not signatures or mixes),
- :func:`reorder_functions` — permute function bodies (defeats the
  ordered signature, not the unordered ablation or mixes),
- :func:`pad_dead_code` — append never-called float-heavy functions
  (defeats static mixes, not dynamic profiling),
- :func:`rewrite_constants` — perturb immediate constants (defeats all
  byte-level signatures while preserving the instruction mix).

Every transform returns a decodable, valid, executable module.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.rng import RngStream
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module
from repro.wasm.types import CodeEntry, Export, FuncType, Instr, Module, ValType


def _roundtrip(module: Module) -> bytes:
    return encode_module(module)


def strip_names(wasm_bytes: bytes) -> bytes:
    """Remove the name section and replace export names with opaque ones."""
    module = decode_module(wasm_bytes)
    module.func_names = {}
    module.module_name = None
    module.exports = [
        Export(f"e{i}" if export.kind == 0 else export.name, export.kind, export.index)
        for i, export in enumerate(module.exports)
    ]
    return _roundtrip(module)


def reorder_functions(wasm_bytes: bytes, rng: Optional[RngStream] = None) -> bytes:
    """Permute the function bodies (and their type indices) coherently.

    Call sites are remapped so the module still executes identically up to
    function identity. The name section is dropped (indices shift).
    """
    module = decode_module(wasm_bytes)
    count = len(module.codes)
    if count < 2:
        return wasm_bytes
    order = list(range(count))
    if rng is None:
        order = list(reversed(order))
    else:
        rng.shuffle(order)
        if order == list(range(count)):
            order = list(reversed(order))
    num_imported = module.num_imported_funcs()
    # old local index → new local index
    new_position = {old: new for new, old in enumerate(order)}
    module.codes = [module.codes[old] for old in order]
    module.func_type_indices = [module.func_type_indices[old] for old in order]

    def remap(index: int) -> int:
        if index < num_imported:
            return index
        return num_imported + new_position[index - num_imported]

    for code in module.codes:
        code.body = [
            Instr("call", (remap(instr.operands[0]),)) if instr.name == "call" else instr
            for instr in code.body
        ]
    module.exports = [
        Export(e.name, e.kind, remap(e.index) if e.kind == 0 else e.index)
        for e in module.exports
    ]
    module.func_names = {}
    module.module_name = None
    return _roundtrip(module)


def pad_dead_code(wasm_bytes: bytes, float_functions: int = 6, ops_per_function: int = 120) -> bytes:
    """Append never-exported, never-called float-heavy functions."""
    module = decode_module(wasm_bytes)
    type_index = len(module.types)
    module.types = list(module.types) + [FuncType((), (ValType.F64,))]
    for i in range(float_functions):
        body: list[Instr] = []
        for j in range(ops_per_function):
            body.append(Instr("f64.const", (float(i + 1),)))
            body.append(Instr("f64.const", (float(j + 2),)))
            body.append(Instr("f64.mul"))
            body.append(Instr("drop"))
        body.append(Instr("f64.const", (0.0,)))
        body.append(Instr("end"))
        module.func_type_indices.append(type_index)
        module.codes.append(CodeEntry(body=body))
    return _roundtrip(module)


def rewrite_constants(wasm_bytes: bytes, rng: RngStream) -> bytes:
    """Perturb i32 immediates (new build ⇒ new signature, same mix).

    Only ``i32.const`` values not used as memory bounds/shift counts are
    safe to change blindly; we perturb constants above a threshold, which
    skips the small shift counts and loop increments.
    """
    module = decode_module(wasm_bytes)
    for code in module.codes:
        new_body = []
        for instr in code.body:
            if instr.name == "i32.const" and abs(instr.operands[0]) > 4096:
                delta = rng.randint(1, 255)
                new_body.append(Instr("i32.const", ((instr.operands[0] + delta) & 0x7FFFFFFF,)))
            else:
                new_body.append(instr)
        code.body = new_body
    return _roundtrip(module)
