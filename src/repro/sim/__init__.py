"""Deterministic discrete-event simulation kernel.

All time-dependent subsystems (the headless browser, mining pools, the
four-week network observation) run on this kernel rather than on wall-clock
time, which makes every experiment in the reproduction deterministic and fast.

Public API:

- :class:`SimClock` — a monotonically advancing simulated clock.
- :class:`EventLoop` — a priority-queue discrete-event scheduler.
- :class:`RngStream` — named, independently seeded random streams derived
  from a single experiment seed.
- :func:`derive_seed` — stable seed derivation for sub-streams.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventLoop
from repro.sim.rng import RngStream, derive_seed

__all__ = ["SimClock", "Event", "EventLoop", "RngStream", "derive_seed"]
