"""Named, independently seeded random streams.

Every experiment takes a single integer seed. Subsystems pull their own
stream by name so that, e.g., adding more domains to the web population does
not perturb the blockchain simulation — a property the tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a stable 64-bit sub-seed from a root seed and a name path.

    Uses SHA-256 over the root seed and the names, so derivation is stable
    across Python versions and processes (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def hash_unit(root_seed: int, *names: str) -> float:
    """A uniform draw in ``[0, 1)`` that is a pure function of its key.

    Unlike consuming an :class:`RngStream`, the value does not depend on
    how many draws happened before it — which is what lets the fault plan
    make identical decisions no matter the order in which shards, threads,
    or resumed campaigns ask.
    """
    return derive_seed(root_seed, *names) / 2**64


class RngStream:
    """A named random stream rooted at an experiment seed.

    Wraps :class:`random.Random` and adds the distribution helpers the
    population generators need (Zipf/power-law, bounded Pareto, exponential
    inter-arrivals).
    """

    def __init__(self, root_seed: int, *names: str) -> None:
        self.root_seed = int(root_seed)
        self.names = tuple(names)
        self._rng = random.Random(derive_seed(root_seed, *names))

    def substream(self, *names: str) -> "RngStream":
        """A child stream; independent of the parent's consumption order."""
        return RngStream(self.root_seed, *(self.names + names))

    # -- thin wrappers ------------------------------------------------------

    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def choices(self, population: Sequence[T], weights: Sequence[float], k: int = 1) -> list:
        return self._rng.choices(population, weights=weights, k=k)

    def sample(self, population: Sequence[T], k: int) -> list:
        return self._rng.sample(population, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def randbytes(self, n: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def getrandbits(self, k: int) -> int:
        return self._rng.getrandbits(k)

    # -- distribution helpers ------------------------------------------------

    def zipf_rank_weights(self, n: int, alpha: float) -> list:
        """Normalized Zipf weights for ranks 1..n with exponent ``alpha``."""
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
        total = sum(weights)
        return [w / total for w in weights]

    def bounded_pareto(self, alpha: float, lo: float, hi: float) -> float:
        """Draw from a Pareto distribution truncated to ``[lo, hi]``.

        Inverse-CDF sampling of the bounded Pareto; heavy upper tails model
        e.g. the 1e19-hash short links of Figure 4.
        """
        if not (0 < lo < hi):
            raise ValueError("require 0 < lo < hi")
        u = self._rng.random()
        la, ha = lo ** alpha, hi ** alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def exponential_interarrivals(self, rate: float, horizon: float) -> Iterator[float]:
        """Yield absolute event times of a Poisson process on ``[0, horizon)``."""
        if rate <= 0:
            return
        t = 0.0
        while True:
            t += self._rng.expovariate(rate)
            if t >= horizon:
                return
            yield t
