"""Discrete-event scheduler.

A tiny, deterministic alternative to real-time event loops. Events are
ordered by (time, sequence number) so that ties break in scheduling order,
making runs reproducible regardless of callback contents.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in deterministic
    order. The callback and payload are excluded from comparison.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Priority-queue discrete-event loop bound to a :class:`SimClock`.

    Usage::

        loop = EventLoop()
        loop.call_at(10.0, handler, arg)
        loop.call_later(0.5, other_handler)
        loop.run_until(3600.0)
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        return self.clock.now

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.clock.now}")
        event = Event(time=when, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.call_at(self.clock.now + delay, callback, *args)

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event. Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback(*event.args)
            return True
        return False

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= deadline``; advance the clock to the deadline.

        Returns the number of events executed. ``max_events`` guards against
        runaway self-rescheduling loops.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if self.clock.now < deadline:
            self.clock.advance_to(deadline)
        return executed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = 0
        while executed < max_events and self.step():
            executed += 1
        return executed
