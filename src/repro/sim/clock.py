"""Simulated clock.

The clock measures seconds as floats. Experiments that model calendar time
(e.g. the four-week Coinhive observation of Figure 5) anchor the clock to a
UNIX epoch offset so that simulated timestamps convert to real dates.
"""

from __future__ import annotations

import datetime as _dt


class SimClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    epoch:
        UNIX timestamp (seconds) that simulated time zero corresponds to.
        Defaults to 0.0.
    """

    __slots__ = ("_now", "epoch")

    def __init__(self, epoch: float = 0.0) -> None:
        self._now = 0.0
        self.epoch = float(epoch)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since simulation start."""
        return self._now

    @property
    def unix(self) -> float:
        """Current simulated time as a UNIX timestamp."""
        return self.epoch + self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time.

        Raises :class:`ValueError` for negative deltas — simulated time never
        runs backwards.
        """
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance the clock to absolute simulated time ``when``.

        Raises :class:`ValueError` if ``when`` is in the past.
        """
        if when < self._now:
            raise ValueError(f"cannot move clock backwards: {when} < {self._now}")
        self._now = when
        return self._now

    def datetime(self) -> _dt.datetime:
        """Current simulated time as a timezone-aware UTC datetime."""
        return _dt.datetime.fromtimestamp(self.unix, tz=_dt.timezone.utc)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}, epoch={self.epoch:.0f})"


def utc_timestamp(year: int, month: int, day: int, hour: int = 0, minute: int = 0) -> float:
    """UNIX timestamp for a UTC calendar instant (helper for experiment setup)."""
    dt = _dt.datetime(year, month, day, hour, minute, tzinfo=_dt.timezone.utc)
    return dt.timestamp()
