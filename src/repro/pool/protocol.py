"""Stratum-like pool protocol messages.

Coinhive's web miner speaks a JSON protocol over WebSockets: ``auth`` with
the site token, ``job`` notifications carrying the hex blob and target, and
``submit`` with the found nonce. We reproduce that message layer so the
instrumented browser's WebSocket capture contains realistic frames — the
frames are one of the signals the detection pipeline (and the paper's
"UnknownWSS" class) keys on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional


class ProtocolError(ValueError):
    """Raised for malformed or out-of-sequence protocol messages."""


@dataclass(frozen=True)
class LoginMessage:
    """Miner → pool: authenticate with a site/user token."""

    token: str
    user_agent: str = "repro-miner/1.0"

    TYPE = "auth"

    def to_dict(self) -> dict:
        return {"type": self.TYPE, "params": {"site_key": self.token, "user": self.user_agent}}


@dataclass(frozen=True)
class JobMessage:
    """Pool → miner: a new job (hex blob + share target)."""

    job_id: str
    blob_hex: str
    target_hex: str

    TYPE = "job"

    def to_dict(self) -> dict:
        return {
            "type": self.TYPE,
            "params": {"job_id": self.job_id, "blob": self.blob_hex, "target": self.target_hex},
        }


@dataclass(frozen=True)
class SubmitMessage:
    """Miner → pool: a share (nonce + resulting hash) for a job."""

    job_id: str
    nonce: int
    result_hex: str

    TYPE = "submit"

    def to_dict(self) -> dict:
        return {
            "type": self.TYPE,
            "params": {
                "job_id": self.job_id,
                "nonce": f"{self.nonce:08x}",
                "result": self.result_hex,
            },
        }


@dataclass(frozen=True)
class SubmitResult:
    """Pool → miner: share verdict."""

    accepted: bool
    reason: Optional[str] = None

    TYPE = "submit_result"

    def to_dict(self) -> dict:
        out: dict = {"type": self.TYPE, "params": {"accepted": self.accepted}}
        if self.reason is not None:
            out["params"]["reason"] = self.reason
        return out


@dataclass(frozen=True)
class AuthedMessage:
    """Pool → miner: authentication acknowledged (Coinhive sent the
    session's accumulated hash count here)."""

    token: str
    hashes: int = 0

    TYPE = "authed"

    def to_dict(self) -> dict:
        return {"type": self.TYPE, "params": {"token": self.token, "hashes": self.hashes}}


@dataclass(frozen=True)
class BannedMessage:
    """Pool → miner: connection rejected (invalid token, abuse)."""

    reason: str = "banned"

    TYPE = "banned"

    def to_dict(self) -> dict:
        return {"type": self.TYPE, "params": {"banned": self.reason}}


@dataclass(frozen=True)
class ErrorMessage:
    """Pool → miner: protocol-level error."""

    error: str

    TYPE = "error"

    def to_dict(self) -> dict:
        return {"type": self.TYPE, "params": {"error": self.error}}


_MESSAGE_TYPES = {
    LoginMessage.TYPE: LoginMessage,
    JobMessage.TYPE: JobMessage,
    SubmitMessage.TYPE: SubmitMessage,
    SubmitResult.TYPE: SubmitResult,
    AuthedMessage.TYPE: AuthedMessage,
    BannedMessage.TYPE: BannedMessage,
    ErrorMessage.TYPE: ErrorMessage,
}


def encode_message(message) -> str:
    """Serialize a protocol message to its JSON wire form."""
    return json.dumps(message.to_dict(), separators=(",", ":"), sort_keys=True)


def decode_message(raw: str):
    """Parse a JSON frame back into a typed message.

    Raises :class:`ProtocolError` on unknown types or missing fields —
    crawled WebSocket traffic contains plenty of non-mining frames.
    """
    try:
        data = json.loads(raw)
    except (json.JSONDecodeError, TypeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "type" not in data:
        raise ProtocolError("frame has no message type")
    msg_type = data["type"]
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object")
    try:
        if msg_type == LoginMessage.TYPE:
            return LoginMessage(token=params["site_key"], user_agent=params.get("user", ""))
        if msg_type == JobMessage.TYPE:
            return JobMessage(
                job_id=params["job_id"], blob_hex=params["blob"], target_hex=params["target"]
            )
        if msg_type == SubmitMessage.TYPE:
            return SubmitMessage(
                job_id=params["job_id"],
                nonce=int(params["nonce"], 16),
                result_hex=params["result"],
            )
        if msg_type == SubmitResult.TYPE:
            return SubmitResult(accepted=bool(params["accepted"]), reason=params.get("reason"))
        if msg_type == AuthedMessage.TYPE:
            return AuthedMessage(token=params["token"], hashes=int(params.get("hashes", 0)))
        if msg_type == BannedMessage.TYPE:
            return BannedMessage(reason=params.get("banned", "banned"))
        if msg_type == ErrorMessage.TYPE:
            return ErrorMessage(error=params["error"])
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed {msg_type} message: {exc}") from exc
    raise ProtocolError(f"unknown message type {msg_type!r}")


def target_hex_for_difficulty(difficulty: int) -> str:
    """Compact 4-byte share target, as Coinhive-era pools sent it.

    The miner compares the last 4 little-endian bytes of its hash against
    this target: ``target = floor(2^32 / difficulty)``.
    """
    if difficulty < 1:
        raise ValueError("difficulty must be >= 1")
    target = min(0xFFFFFFFF, (1 << 32) // difficulty)
    return target.to_bytes(4, "little").hex()


def difficulty_for_target_hex(target_hex: str) -> int:
    """Inverse of :func:`target_hex_for_difficulty` (rounded)."""
    target = int.from_bytes(bytes.fromhex(target_hex), "little")
    if target == 0:
        raise ValueError("zero target")
    return max(1, (1 << 32) // target)
