"""Share validation and per-token accounting.

A *share* is a nonce whose PoW hash meets the pool's (lowered) share
difficulty. The ledger records accepted shares per token — the basis for
the 70/30 payout split — and flags shares that also meet the network
difficulty, i.e. found an actual block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.block import set_blob_nonce
from repro.blockchain.hashing import CryptonightParams, DEFAULT_PARAMS, cryptonight, hash_meets_difficulty
from repro.pool.jobs import Job


@dataclass(frozen=True)
class ShareVerdict:
    """Outcome of validating one submitted share."""

    accepted: bool
    is_block: bool = False
    reason: Optional[str] = None


@dataclass
class ShareValidator:
    """Recomputes and checks submitted shares (the pool's hot path)."""

    pow_params: CryptonightParams = DEFAULT_PARAMS

    def validate(self, job: Job, nonce: int, claimed_hash: Optional[bytes] = None) -> ShareVerdict:
        """Check ``nonce`` against ``job``.

        The pool recomputes the hash itself (miners lie); ``claimed_hash``
        when provided must match or the share is rejected outright.
        """
        if not 0 <= nonce < 2**32:
            return ShareVerdict(False, reason="nonce out of range")
        blob = set_blob_nonce(job.blob, job.template.header, nonce)
        pow_hash = cryptonight(blob, self.pow_params)
        if claimed_hash is not None and claimed_hash != pow_hash:
            return ShareVerdict(False, reason="hash mismatch")
        if not hash_meets_difficulty(pow_hash, job.share_difficulty):
            return ShareVerdict(False, reason="low difficulty share")
        is_block = hash_meets_difficulty(pow_hash, job.template.network_difficulty)
        return ShareVerdict(True, is_block=is_block)


@dataclass
class ShareLedger:
    """Accepted-share counts per token, with share-difficulty weighting.

    ``hashes_credited`` approximates work: each accepted share at share
    difficulty *d* represents *d* expected hashes — the quantity Coinhive
    pays out on and the short-link service counts toward link resolution.
    """

    shares: dict = field(default_factory=dict)
    hashes_credited: dict = field(default_factory=dict)
    blocks_found: int = 0

    def record(self, token: str, share_difficulty: int, is_block: bool = False) -> None:
        self.shares[token] = self.shares.get(token, 0) + 1
        self.hashes_credited[token] = self.hashes_credited.get(token, 0) + share_difficulty
        if is_block:
            self.blocks_found += 1

    def total_shares(self) -> int:
        return sum(self.shares.values())

    def total_hashes(self) -> int:
        return sum(self.hashes_credited.values())

    def snapshot_and_reset(self) -> dict:
        """Return per-token hash credits and clear them (per-round payout)."""
        snap = dict(self.hashes_credited)
        self.shares.clear()
        self.hashes_credited.clear()
        return snap
