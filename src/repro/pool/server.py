"""The pool server.

One :class:`PoolServer` owns several *backends*. Each backend maintains its
own block template (distinguished by its extra nonce) and refreshes it
periodically as new transactions arrive — which is why an observer polling
a single endpoint sees a handful of distinct PoW inputs per block (the
paper measured at most 8), and at most ``backends × 8`` across all
endpoints (128 for Coinhive's 16 backends).

The server exposes the miner-facing operations (``handle_login``,
``get_job``, ``handle_submit``) and chain-facing housekeeping
(``on_new_block``, ``refresh_templates``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.blockchain.chain import Blockchain, Mempool
from repro.faults.plan import FaultPlan
from repro.pool.jobs import BlockTemplate, Job, build_template
from repro.pool.payout import PayoutLedger
from repro.pool.protocol import JobMessage, SubmitResult, target_hex_for_difficulty
from repro.pool.shares import ShareLedger, ShareValidator, ShareVerdict


class PoolUnavailable(RuntimeError):
    """An injected endpoint outage: the backend refuses job requests.

    The reason string contains "unavailable" so legacy substring handling
    (and :func:`repro.faults.taxonomy.classify_reason`) files it under
    ``ErrorClass.POOL_OUTAGE``.
    """

    def __init__(self, endpoint_key: str) -> None:
        super().__init__(f"{endpoint_key} unavailable (injected outage)")
        self.endpoint_key = endpoint_key
        self.injected = True


@dataclass
class _Backend:
    """One template-producing backend of the pool."""

    index: int
    extra_nonce_prefix: bytes
    template: Optional[BlockTemplate] = None
    template_serial: int = 0
    templates_this_block: int = 0


@dataclass
class PoolServer:
    """A mining pool bound to a chain and a mempool.

    Parameters
    ----------
    name:
        Pool identifier (also used as its payout address).
    chain, mempool:
        The blockchain substrate the pool mines on.
    num_backends:
        Independent template producers (Coinhive: 16).
    share_difficulty:
        The lowered difficulty shares must meet.
    max_templates_per_block:
        Cap on template refreshes per chain height per backend — the
        paper's "never more than 8 PoW inputs" observation.
    blob_transform:
        Optional hook applied to outgoing job blobs; Coinhive installs its
        XOR obfuscation here (see :mod:`repro.coinhive.obfuscation`).
    """

    name: str
    chain: Blockchain
    mempool: Mempool = field(default_factory=Mempool)
    num_backends: int = 4
    share_difficulty: int = 16
    max_templates_per_block: int = 8
    fee_percent: int = 30
    blob_transform: Optional[Callable[[bytes], bytes]] = None
    #: injected outage windows (time-bucketed per backend); ``None`` = none
    fault_plan: Optional[FaultPlan] = None
    validator: ShareValidator = field(default=None)  # type: ignore[assignment]
    shares: ShareLedger = field(default_factory=ShareLedger)
    payouts: PayoutLedger = field(default=None)  # type: ignore[assignment]
    _backends: list = field(default_factory=list)
    _jobs: dict = field(default_factory=dict)
    _job_counter: int = 0
    _sessions: dict = field(default_factory=dict)
    _seen_shares: set = field(default_factory=set)
    blocks_mined: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.validator is None:
            self.validator = ShareValidator(pow_params=self.chain.pow_params)
        if self.payouts is None:
            self.payouts = PayoutLedger(pool_fee_percent=self.fee_percent)
        if not self._backends:
            self._backends = [
                _Backend(index=i, extra_nonce_prefix=f"{self.name}/be{i}/".encode())
                for i in range(self.num_backends)
            ]

    # -- template management ---------------------------------------------------

    def refresh_backend(self, backend_index: int, now: float) -> BlockTemplate:
        """Rebuild one backend's template against the current tip.

        Honors ``max_templates_per_block``: once a backend has produced the
        cap for the current height it keeps serving the last template.
        """
        backend = self._backends[backend_index]
        tip_height = self.chain.height + 1
        if backend.template is not None and backend.template.height == tip_height:
            if backend.templates_this_block >= self.max_templates_per_block:
                return backend.template
        else:
            backend.templates_this_block = 0
        backend.template_serial += 1
        extra_nonce = backend.extra_nonce_prefix + backend.template_serial.to_bytes(4, "little")
        backend.template = build_template(
            self.chain, self.name, extra_nonce, timestamp=now, mempool=self.mempool
        )
        backend.templates_this_block += 1
        return backend.template

    def refresh_templates(self, now: float) -> None:
        for i in range(self.num_backends):
            self.refresh_backend(i, now)

    def on_new_block(self, now: float) -> None:
        """Chain advanced (by us or a competitor): rebuild all templates."""
        for backend in self._backends:
            backend.templates_this_block = 0
        self.refresh_templates(now)

    # -- miner-facing API --------------------------------------------------------

    def handle_login(self, connection_id: str, token: str) -> None:
        if not token:
            raise ValueError("empty token")
        self._sessions[connection_id] = token

    def token_for(self, connection_id: str) -> str:
        try:
            return self._sessions[connection_id]
        except KeyError:
            raise KeyError(f"connection {connection_id!r} not logged in") from None

    def get_job(self, connection_id: str, backend_index: int, now: float) -> Job:
        """Issue a job from a backend's current template.

        Raises :class:`PoolUnavailable` while the fault plan has this
        backend inside an injected outage window.
        """
        self.token_for(connection_id)  # must be authenticated
        if self.fault_plan is not None and self.fault_plan.pool_endpoint_down(
            f"{self.name}/be{backend_index}", now
        ):
            raise PoolUnavailable(f"{self.name}/be{backend_index}")
        backend = self._backends[backend_index]
        if backend.template is None or backend.template.height != self.chain.height + 1:
            self.refresh_backend(backend_index, now)
        template = backend.template
        assert template is not None
        blob = template.blob()
        if self.blob_transform is not None:
            blob = self.blob_transform(blob)
        self._job_counter += 1
        job = Job(
            job_id=Job.make_id(blob, self._job_counter),
            blob=blob,
            share_difficulty=self.share_difficulty,
            template=template,
        )
        self._jobs[job.job_id] = job
        return job

    def job_message(self, job: Job) -> JobMessage:
        return JobMessage(
            job_id=job.job_id,
            blob_hex=job.blob.hex(),
            target_hex=target_hex_for_difficulty(job.share_difficulty),
        )

    def handle_submit(
        self, connection_id: str, job_id: str, nonce: int, now: float
    ) -> SubmitResult:
        """Validate a share; append a block to the chain when it qualifies."""
        token = self.token_for(connection_id)
        job = self._jobs.get(job_id)
        if job is None:
            return SubmitResult(False, reason="unknown job")
        # Validation happens on the *true* blob: undo any outgoing transform
        # by rebuilding from the template (the pool knows its own secret).
        true_job = Job(
            job_id=job.job_id,
            blob=job.template.blob(),
            share_difficulty=job.share_difficulty,
            template=job.template,
        )
        share_key = (true_job.blob, nonce)
        if share_key in self._seen_shares:
            return SubmitResult(False, reason="duplicate share")
        verdict: ShareVerdict = self.validator.validate(true_job, nonce)
        if not verdict.accepted:
            return SubmitResult(False, reason=verdict.reason)
        self._seen_shares.add(share_key)
        self.shares.record(token, job.share_difficulty, is_block=verdict.is_block)
        if verdict.is_block and job.template.height == self.chain.height + 1:
            block = job.template.to_block(nonce)
            self.chain.submit(block)
            self.blocks_mined.append(block)
            self.payouts.distribute_block(block.reward(), self.shares.snapshot_and_reset())
            self.on_new_block(now)
        return SubmitResult(True)

    # -- statistics ----------------------------------------------------------------

    def distinct_pow_inputs(self) -> set:
        """Distinct outgoing blobs currently cached across jobs."""
        return {job.blob for job in self._jobs.values()}
