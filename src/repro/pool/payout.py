"""Reward distribution.

Coinhive's model (Section 4 of the paper): the pool keeps 30% of each block
reward and distributes 70% to users proportionally to the hashes they
contributed. The ledger keeps atomic-unit integer arithmetic; rounding dust
stays with the pool (as real pools do).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PayoutLedger:
    """Tracks balances for the pool operator and its users (tokens)."""

    pool_fee_percent: int = 30
    balances_atomic: dict = field(default_factory=dict)
    pool_balance_atomic: int = 0
    blocks_paid: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.pool_fee_percent <= 100:
            raise ValueError("pool fee must be a percentage")

    def distribute_block(self, reward_atomic: int, hash_credits: dict) -> dict:
        """Split one block reward over ``hash_credits`` (token → hashes).

        Returns the per-token payout. With no credited hashes the entire
        reward stays with the pool (idle pool still mines its own blocks).
        """
        if reward_atomic < 0:
            raise ValueError("negative reward")
        self.blocks_paid += 1
        fee = reward_atomic * self.pool_fee_percent // 100
        distributable = reward_atomic - fee
        total_hashes = sum(hash_credits.values())
        payouts: dict = {}
        paid = 0
        if total_hashes > 0:
            for token, hashes in hash_credits.items():
                amount = distributable * hashes // total_hashes
                if amount:
                    payouts[token] = amount
                    self.balances_atomic[token] = self.balances_atomic.get(token, 0) + amount
                    paid += amount
        self.pool_balance_atomic += reward_atomic - paid
        return payouts

    def user_total_atomic(self) -> int:
        return sum(self.balances_atomic.values())

    def grand_total_atomic(self) -> int:
        return self.pool_balance_atomic + self.user_total_atomic()
