"""Mining-pool substrate.

A pool hands *jobs* (PoW inputs derived from its own block template) to
miners, accepts *shares* (nonces meeting a lowered difficulty), and submits
a block to the chain when a share happens to meet the network difficulty
(Section 2 of the paper). Components:

- :mod:`repro.pool.jobs` — block templates and jobs.
- :mod:`repro.pool.protocol` — the stratum-like JSON message layer carried
  over WebSockets.
- :mod:`repro.pool.shares` — share validation and per-token accounting.
- :mod:`repro.pool.server` — the pool server tying it together.
- :mod:`repro.pool.payout` — proportional reward distribution with a pool
  fee (Coinhive keeps 30%).
"""

from repro.pool.jobs import BlockTemplate, Job
from repro.pool.protocol import (
    JobMessage,
    LoginMessage,
    ProtocolError,
    SubmitMessage,
    SubmitResult,
    decode_message,
    encode_message,
)
from repro.pool.server import PoolServer
from repro.pool.shares import ShareLedger, ShareValidator
from repro.pool.payout import PayoutLedger

__all__ = [
    "BlockTemplate",
    "Job",
    "JobMessage",
    "LoginMessage",
    "ProtocolError",
    "SubmitMessage",
    "SubmitResult",
    "decode_message",
    "encode_message",
    "PoolServer",
    "ShareLedger",
    "ShareValidator",
    "PayoutLedger",
]
