"""Block templates and mining jobs.

A *template* is the pool's candidate next block: its own coinbase (with a
backend-specific extra nonce) plus mempool transactions. A *job* is the
hashing blob of that template plus a share target. Because the coinbase is
the first Merkle leaf, every distinct extra nonce yields a distinct Merkle
root — the uniqueness property the paper's pool-association method exploits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.block import Block, BlockHeader, hashing_blob
from repro.blockchain.merkle import tree_hash
from repro.blockchain.transactions import Transaction, coinbase_transaction


@dataclass(frozen=True)
class BlockTemplate:
    """One candidate block a pool backend is currently working on."""

    height: int
    header: BlockHeader
    transactions: tuple  # coinbase first
    network_difficulty: int

    @property
    def coinbase(self) -> Transaction:
        return self.transactions[0]

    def merkle_root(self) -> bytes:
        return tree_hash([tx.hash() for tx in self.transactions])

    def blob(self) -> bytes:
        """The PoW input distributed to miners (nonce field zeroed)."""
        return hashing_blob(self.header, self.merkle_root(), len(self.transactions))

    def to_block(self, nonce: int) -> Block:
        """Materialize the full block for a winning nonce."""
        return Block(
            header=self.header.with_nonce(nonce),
            transactions=list(self.transactions),
        )


def build_template(
    chain,
    pool_address: str,
    extra_nonce: bytes,
    timestamp: int,
    mempool=None,
    max_txs: int = 32,
) -> BlockTemplate:
    """Construct a template on top of the current chain tip."""
    height = chain.height + 1
    reward = chain.current_reward()
    coinbase = coinbase_transaction(height, reward, pool_address, extra_nonce)
    txs: list[Transaction] = [coinbase]
    if mempool is not None:
        txs.extend(mempool.take(max_txs))
    header = BlockHeader(
        major=chain.tip.header.major,
        minor=chain.tip.header.minor,
        timestamp=int(timestamp),
        prev_id=chain.tip.block_id(),
        nonce=0,
    )
    return BlockTemplate(
        height=height,
        header=header,
        transactions=tuple(txs),
        network_difficulty=chain.current_difficulty(),
    )


@dataclass(frozen=True)
class Job:
    """A unit of work handed to one miner connection."""

    job_id: str
    blob: bytes
    share_difficulty: int
    template: BlockTemplate = field(compare=False)

    @staticmethod
    def make_id(blob: bytes, counter: int) -> str:
        return hashlib.sha256(blob + counter.to_bytes(8, "little")).hexdigest()[:16]


@dataclass(frozen=True)
class PowInputObservation:
    """What the paper's observer records per poll: the raw PoW input.

    ``prev_id`` and ``merkle_root`` are parsed straight out of the blob (the
    observer has no privileged view of the pool), ``seen_at`` is simulated
    time, ``endpoint`` identifies where it was fetched.
    """

    endpoint: str
    seen_at: float
    blob: bytes
    prev_id: bytes
    merkle_root: bytes
    num_txs: int


def parse_blob(blob: bytes) -> tuple:
    """Split a hashing blob into ``(header_fields, prev_id, nonce, merkle_root, num_txs)``.

    This is what an outside observer can always do: the blob layout is fixed
    by consensus (see :mod:`repro.blockchain.block`).
    """
    from repro.blockchain import varint

    pos = 0
    major, pos = varint.decode(blob, pos)
    minor, pos = varint.decode(blob, pos)
    timestamp, pos = varint.decode(blob, pos)
    prev_id = blob[pos : pos + 32]
    pos += 32
    nonce = int.from_bytes(blob[pos : pos + 4], "little")
    pos += 4
    merkle_root = blob[pos : pos + 32]
    pos += 32
    num_txs, pos = varint.decode(blob, pos)
    if pos != len(blob):
        raise ValueError("trailing bytes in hashing blob")
    return (major, minor, timestamp), prev_id, nonce, merkle_root, num_txs
