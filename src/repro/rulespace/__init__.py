"""RuleSpace-like website categorization engine.

The paper classifies mining sites and short-link destinations with
Symantec's proprietary RuleSpace engine. Our stand-in is a deterministic
keyword/domain-rule engine over the paper's category vocabulary, with the
same operationally relevant property: *partial coverage* (RuleSpace could
categorize 79% of Alexa but only 54% of .org NoCoin hits; about 1/3 of
short-link URLs had no classification).
"""

from repro.rulespace.categories import CATEGORIES, Category
from repro.rulespace.engine import RuleSpaceEngine

__all__ = ["CATEGORIES", "Category", "RuleSpaceEngine"]
