"""The categorization engine.

Classification order mirrors commercial URL categorizers: exact
domain-table lookups first (curated entries), then domain-fragment rules,
then content keywords. A URL can belong to multiple categories (the paper:
"One URL can have multiple categories"), and plenty of URLs get none.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rulespace.categories import CATEGORIES


@dataclass
class RuleSpaceEngine:
    """Deterministic multi-label categorizer."""

    #: curated exact-domain entries (seeded with the paper's Table 4 hosts)
    curated: dict = field(default_factory=lambda: dict(_CURATED_DOMAINS))

    def classify_domain(self, domain: str) -> tuple:
        """Categories for a bare domain name (multi-label, possibly empty)."""
        domain = domain.lower().strip().strip(".")
        if domain.startswith("www."):
            domain = domain[4:]
        if domain in self.curated:
            return self.curated[domain]
        labels = []
        for category in CATEGORIES:
            for fragment in category.domain_fragments:
                if fragment in domain:
                    labels.append(category.name)
                    break
        return tuple(labels)

    def classify_url(self, url: str) -> tuple:
        """Categories for a URL: host rules plus path keywords."""
        stripped = url.split("://", 1)[-1]
        host, _, path = stripped.partition("/")
        labels = list(self.classify_domain(host))
        path = path.lower()
        if path:
            for category in CATEGORIES:
                if category.name in labels:
                    continue
                for fragment in category.domain_fragments:
                    if fragment in path:
                        labels.append(category.name)
                        break
        return tuple(dict.fromkeys(labels))

    def classify_text(self, text: str) -> tuple:
        """Categories from page content keywords (used as a fallback)."""
        lowered = text.lower()
        labels = []
        for category in CATEGORIES:
            hits = sum(1 for kw in category.content_keywords if kw in lowered)
            if hits >= 2:
                labels.append(category.name)
        return tuple(labels)

    def classify_site(self, domain: str, body_text: str = "") -> tuple:
        """Domain rules first; content keywords only when domains say nothing."""
        labels = self.classify_domain(domain)
        if labels:
            return labels
        return self.classify_text(body_text)

    def coverage(self, domains) -> float:
        """Fraction of ``domains`` that receive at least one category."""
        domains = list(domains)
        if not domains:
            return 0.0
        classified = sum(1 for d in domains if self.classify_domain(d))
        return classified / len(domains)


#: Curated entries for the destination hosts of the paper's Table 4.
_CURATED_DOMAINS: tuple = (
    ("youtu.be", ("Entertainment & Music",)),
    ("youtube.com", ("Entertainment & Music",)),
    ("zippyshare.com", ("Filesharing",)),
    ("icerbox.com", ("Filesharing",)),
    ("hq-mirror.de", ("Entertainment & Music",)),
    ("andyspeedracing.com", ("Automotive",)),
    ("ftbucket.info", ("Message Board",)),
    ("getcoinfree.com", ("Finance and Investing",)),
    ("ul.to", ("Filesharing",)),
    ("share-online.biz", ("Filesharing",)),
    ("oboom.com", ("Filesharing",)),
)
