"""Category vocabulary and keyword rules.

Categories are the ones appearing in the paper's Tables 3, 4, and 5. Each
category carries domain-name fragments and content keywords; the synthetic
domain generator uses the same fragments, closing the loop between
population and classifier the way real-world naming conventions do.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Category:
    """One RuleSpace-style category with its matching vocabulary."""

    name: str
    domain_fragments: tuple
    content_keywords: tuple


CATEGORIES: tuple = (
    Category(
        "Gaming",
        ("game", "play", "arcade", "clan", "guild", "mmo", "quest"),
        ("game", "player", "level", "multiplayer", "leaderboard"),
    ),
    Category(
        "Educational Site",
        ("edu", "learn", "school", "academy", "tutorial", "course"),
        ("course", "lesson", "student", "tutorial", "learning"),
    ),
    Category(
        "Shopping",
        ("shop", "store", "buy", "deal", "market", "outlet"),
        ("cart", "checkout", "price", "discount", "shipping"),
    ),
    Category(
        "Pornography",
        ("xxx", "porn", "adult", "cam4", "nsfw", "sexy"),
        ("adult", "explicit", "18+", "webcam"),
    ),
    Category(
        "Technology & Telecommunication",
        ("tech", "soft", "cloud", "mobile", "dev", "code", "telecom"),
        ("software", "download", "developer", "android", "api"),
    ),
    Category(
        "Entertainment & Music",
        ("music", "tube", "video", "stream", "movie", "tv", "radio", "mirror"),
        ("watch", "listen", "episode", "playlist", "stream"),
    ),
    Category(
        "Filesharing",
        ("share", "file", "upload", "torrent", "zippy", "mirrorbox", "icer", "oboom", "ul-"),
        ("download", "upload", "mirror", "premium", "filehost"),
    ),
    Category(
        "Business",
        ("corp", "biz", "consult", "agency", "group", "solutions"),
        ("services", "clients", "company", "contact us"),
    ),
    Category(
        "Religion",
        ("church", "faith", "parish", "gospel", "temple", "mosque"),
        ("prayer", "worship", "scripture", "congregation"),
    ),
    Category(
        "Health Site",
        ("health", "clinic", "med", "pharma", "dental", "wellness"),
        ("patient", "treatment", "symptoms", "therapy"),
    ),
    Category(
        "Dynamic Site",
        ("app", "portal", "dash", "panel"),
        ("loading", "please wait", "single page"),
    ),
    Category(
        "Finance and Investing",
        ("coin", "invest", "finance", "bank", "trade", "money", "getcoin"),
        ("exchange", "wallet", "interest", "portfolio", "faucet"),
    ),
    Category(
        "Hosting",
        ("host", "server", "vps", "dns", "cdn"),
        ("uptime", "bandwidth", "datacenter", "domains"),
    ),
    Category(
        "Message Board",
        ("forum", "board", "chan", "bucket", "bbs"),
        ("thread", "reply", "post", "moderator"),
    ),
    Category(
        "Automotive",
        ("auto", "car", "racing", "motor", "speed"),
        ("engine", "wheels", "tuning", "horsepower"),
    ),
)

BY_NAME: dict = {category.name: category for category in CATEGORIES}
