"""Monero's privacy mechanics, simulated.

The paper leans on Monero being "privacy-preserving": one cannot read a
pool's blocks off the chain the way one can with Bitcoin — which is *why*
the Merkle-root association method had to be invented. To make that
property concrete, this module simulates the three mechanisms that
provide it:

- **stealth (one-time) outputs** — every payment goes to a fresh one-time
  key derived from the recipient's address and per-transaction
  randomness; observers cannot link outputs to addresses,
- **ring signatures** — a spend references a *ring* of plausible source
  outputs (decoys + the real one) without revealing which is real,
- **key images** — a deterministic tag of the real spent output; the
  network rejects a repeated key image (double spend) without learning
  which ring member it belongs to.

The cryptography is *simulated* with hashes (no discrete-log math): the
unlinkability, ring-membership, and double-spend-detection *interfaces and
invariants* are faithful, the hardness assumptions are not. That is the
right fidelity for this reproduction: the chain analysis in
:mod:`repro.core.pool_association` must work *despite* these properties,
and the tests assert exactly that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.rng import RngStream


def _h(*parts: bytes) -> bytes:
    digest = hashlib.sha3_256()
    for part in parts:
        digest.update(len(part).to_bytes(4, "little"))
        digest.update(part)
    return digest.digest()


@dataclass(frozen=True)
class Wallet:
    """A keypair owner (simulated: keys are opaque 32-byte secrets)."""

    name: str
    spend_secret: bytes
    view_secret: bytes

    @classmethod
    def create(cls, name: str, rng: RngStream) -> "Wallet":
        return cls(name=name, spend_secret=rng.randbytes(32), view_secret=rng.randbytes(32))

    @property
    def address(self) -> str:
        """Public address: derived from the secrets, safe to publish."""
        return "4" + _h(b"addr", self.spend_secret, self.view_secret).hex()[:40]


@dataclass(frozen=True)
class StealthOutput:
    """A one-time output on the chain.

    ``one_time_key`` is all an observer sees; only the recipient (holding
    the view secret) can recognize it via :func:`output_belongs_to`.
    """

    one_time_key: bytes
    amount_atomic: int
    tx_randomness: bytes

    @property
    def key_image_preimage(self) -> bytes:
        return self.one_time_key


def make_stealth_output(recipient: Wallet, amount_atomic: int, rng: RngStream) -> StealthOutput:
    """Pay ``recipient``: derive a fresh unlinkable one-time key."""
    randomness = rng.randbytes(32)
    one_time_key = _h(b"otk", recipient.view_secret, recipient.spend_secret, randomness)
    return StealthOutput(
        one_time_key=one_time_key, amount_atomic=amount_atomic, tx_randomness=randomness
    )


def output_belongs_to(output: StealthOutput, wallet: Wallet) -> bool:
    """Recipient-side scan: recompute the one-time key from the secrets."""
    expected = _h(b"otk", wallet.view_secret, wallet.spend_secret, output.tx_randomness)
    return expected == output.one_time_key


def key_image_for(output: StealthOutput, owner: Wallet) -> bytes:
    """The unique spend tag: deterministic in (output, owner secret).

    Spending the same output twice — even in different rings — produces
    the same key image, which is how double spends are caught without
    revealing the output.
    """
    return _h(b"keyimage", output.one_time_key, owner.spend_secret)


@dataclass(frozen=True)
class RingSignature:
    """A simulated ring signature over a spend."""

    ring: tuple            # one-time keys of all ring members (real + decoys)
    key_image: bytes
    challenge: bytes       # binds the ring, key image, and message

    def ring_size(self) -> int:
        return len(self.ring)


def sign_spend(
    output: StealthOutput,
    owner: Wallet,
    decoys: list,
    message: bytes,
    rng: RngStream,
) -> RingSignature:
    """Produce a ring signature spending ``output`` among ``decoys``.

    The real member's position is shuffled into the ring; the challenge
    commits to everything so the signature cannot be transplanted onto a
    different message (transaction).
    """
    members = [output.one_time_key] + [d.one_time_key for d in decoys]
    rng.shuffle(members)
    key_image = key_image_for(output, owner)
    challenge = _h(b"ringsig", key_image, message, *members)
    return RingSignature(ring=tuple(members), key_image=key_image, challenge=challenge)


def verify_spend(signature: RingSignature, message: bytes) -> bool:
    """Structural verification: ring non-trivial and challenge consistent."""
    if signature.ring_size() < 2:
        return False
    expected = _h(b"ringsig", signature.key_image, message, *signature.ring)
    return expected == signature.challenge


class DoubleSpendError(ValueError):
    """Raised when a key image is seen twice."""


@dataclass
class KeyImageRegistry:
    """The network's double-spend ledger."""

    seen: set = field(default_factory=set)

    def register(self, key_image: bytes) -> None:
        if key_image in self.seen:
            raise DoubleSpendError(f"key image {key_image.hex()[:16]}… already spent")
        self.seen.add(key_image)

    def is_spent(self, key_image: bytes) -> bool:
        return key_image in self.seen

    def __len__(self) -> int:
        return len(self.seen)


@dataclass
class PrivateTransferFactory:
    """Builds fully private transfers (stealth outputs + ring signatures).

    A drop-in richer alternative to
    :class:`repro.blockchain.transactions.TransferFactory`: transactions
    carry a ring signature blob in ``extra`` and their inputs reference
    key images, so the chain's observer genuinely cannot tell who paid
    whom — only the pool-association method (which never needs to) works.
    """

    rng: RngStream
    registry: KeyImageRegistry = field(default_factory=KeyImageRegistry)
    decoy_pool: list = field(default_factory=list)
    _counter: int = 0

    def fund_wallet(self, wallet: Wallet, amount_atomic: int) -> StealthOutput:
        """Create a spendable output for ``wallet`` (e.g. mining income)."""
        output = make_stealth_output(wallet, amount_atomic, self.rng.substream("fund", str(len(self.decoy_pool))))
        self.decoy_pool.append(output)
        return output

    def transfer(self, sender: Wallet, sender_output: StealthOutput, recipient: Wallet, ring_size: int = 11):
        """Spend ``sender_output`` to ``recipient``; returns a Transaction.

        Raises :class:`DoubleSpendError` on output reuse.
        """
        from repro.blockchain.transactions import Transaction

        self._counter += 1
        decoys = [o for o in self.decoy_pool if o is not sender_output]
        self.rng.shuffle(decoys)
        decoys = decoys[: max(1, ring_size - 1)]
        new_output = make_stealth_output(
            recipient, sender_output.amount_atomic, self.rng.substream("xfer", str(self._counter))
        )
        message = _h(b"txmsg", new_output.one_time_key, self._counter.to_bytes(8, "little"))
        signature = sign_spend(sender_output, sender, decoys, message, self.rng.substream("sig", str(self._counter)))
        if not verify_spend(signature, message):
            raise ValueError("ring signature failed self-verification")
        self.registry.register(signature.key_image)
        self.decoy_pool.append(new_output)
        return Transaction(
            version=2,
            unlock_time=0,
            inputs=(("key", signature.key_image),),
            outputs=((new_output.amount_atomic, new_output.one_time_key.hex()),),
            extra=signature.challenge + message,
        )
