"""Monero-like blockchain substrate.

The paper's pool-association method (Section 4.2) needs a real chain to
verify against: PoW inputs reference the previous block and commit to the
pending transactions through a Merkle tree root, and the mined block's
coinbase pays the pool. This package reproduces the relevant mechanics of
Monero in miniature:

- :mod:`repro.blockchain.hashing` — a CryptoNight stand-in PoW hash
  (memory-touching, CPU-friendly, deterministic) and the Monero difficulty
  test ``hash × difficulty < 2^256``.
- :mod:`repro.blockchain.merkle` — Monero's exact tree-hash algorithm.
- :mod:`repro.blockchain.transactions` — transfers and coinbase payouts.
- :mod:`repro.blockchain.block` — header/hashing-blob serialization with
  Monero varints and the fixed-offset 4-byte nonce.
- :mod:`repro.blockchain.difficulty` — windowed difficulty retargeting for
  the 120-second block target.
- :mod:`repro.blockchain.chain` — chain state, validation, emission.
"""

from repro.blockchain.hashing import (
    CryptonightParams,
    cryptonight,
    hash_meets_difficulty,
)
from repro.blockchain.merkle import tree_hash
from repro.blockchain.transactions import Transaction, coinbase_transaction
from repro.blockchain.block import Block, BlockHeader, NONCE_OFFSET, hashing_blob
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.chain import Blockchain, BlockValidationError, Mempool
from repro.blockchain.privacy import (
    DoubleSpendError,
    KeyImageRegistry,
    PrivateTransferFactory,
    RingSignature,
    Wallet,
)

__all__ = [
    "CryptonightParams",
    "cryptonight",
    "hash_meets_difficulty",
    "tree_hash",
    "Transaction",
    "coinbase_transaction",
    "Block",
    "BlockHeader",
    "NONCE_OFFSET",
    "hashing_blob",
    "DifficultyAdjuster",
    "Blockchain",
    "BlockValidationError",
    "Mempool",
    "DoubleSpendError",
    "KeyImageRegistry",
    "PrivateTransferFactory",
    "RingSignature",
    "Wallet",
]
