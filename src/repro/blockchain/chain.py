"""Chain state: validation, emission, and the mempool.

The chain accepts blocks whose PoW hash meets the current difficulty,
tracks cumulative difficulty for retargeting, and implements Monero's
emission curve ``reward = (supply − generated) >> 19`` (for the 120 s
target), which put the block reward at ≈4.7 XMR in mid-2018 — the figure
behind the paper's "1271 XMR over four weeks" revenue estimate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.block import Block, BlockHeader, MAJOR_VERSION, MINOR_VERSION
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import CryptonightParams, DEFAULT_PARAMS, hash_meets_difficulty
from repro.blockchain.transactions import ATOMIC_PER_XMR, Transaction, coinbase_transaction

GENESIS_PREV = bytes(32)

#: Monero's nominal atomic supply before the tail emission.
MONEY_SUPPLY = (1 << 64) - 1
#: Emission speed for the 120 s target (Monero: 20 − 1).
EMISSION_SPEED_FACTOR = 19
#: Atomic units already generated at simulation start, chosen so the block
#: reward is ≈4.70 XMR — Monero's actual reward level in May–July 2018.
GENERATED_AT_START = MONEY_SUPPLY - (4_700_000_000_000 << EMISSION_SPEED_FACTOR)
#: Tail emission floor (0.6 XMR), per Monero's design.
TAIL_REWARD = 600_000_000_000


class BlockValidationError(ValueError):
    """Raised when a submitted block violates consensus rules."""


def base_reward(generated_atomic: int) -> int:
    """Monero emission: ``max((supply − generated) >> 19, tail)``."""
    reward = (MONEY_SUPPLY - generated_atomic) >> EMISSION_SPEED_FACTOR
    return max(reward, TAIL_REWARD)


@dataclass
class Mempool:
    """Pending transactions waiting to be included in a block."""

    _txs: dict = field(default_factory=dict)

    def add(self, tx: Transaction) -> None:
        if tx.is_coinbase:
            raise ValueError("coinbase transactions are never in the mempool")
        self._txs[tx.hash()] = tx

    def take(self, limit: int) -> list:
        """Up to ``limit`` transactions in insertion order (not removed)."""
        out = []
        for tx in self._txs.values():
            if len(out) >= limit:
                break
            out.append(tx)
        return out

    def remove_included(self, block: Block) -> int:
        """Drop transactions included in ``block``; returns how many."""
        removed = 0
        for tx in block.transactions[1:]:
            if self._txs.pop(tx.hash(), None) is not None:
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._txs)


@dataclass
class Blockchain:
    """An append-only validated chain.

    Parameters mirror the experiment knobs: PoW cost profile and the
    difficulty adjuster (tests use small windows for fast retargeting).
    """

    pow_params: CryptonightParams = DEFAULT_PARAMS
    adjuster: DifficultyAdjuster = field(default_factory=DifficultyAdjuster)
    genesis_timestamp: int = 0
    blocks: list = field(default_factory=list)
    generated_atomic: int = GENERATED_AT_START
    _timestamps: list = field(default_factory=list)
    _cumulative_difficulty: list = field(default_factory=list)
    _ids: set = field(default_factory=set)
    _by_prev: dict = field(default_factory=dict)
    _height_by_id: dict = field(default_factory=dict)
    _difficulty_cache: Optional[tuple] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.blocks:
            self._append_genesis()

    def _append_genesis(self) -> None:
        reward = base_reward(self.generated_atomic)
        coinbase = coinbase_transaction(0, reward, "genesis", b"genesis")
        header = BlockHeader(
            major=MAJOR_VERSION,
            minor=MINOR_VERSION,
            timestamp=self.genesis_timestamp,
            prev_id=GENESIS_PREV,
            nonce=0,
        )
        genesis = Block(header=header, transactions=[coinbase])
        self.blocks.append(genesis)
        self.generated_atomic += reward
        self._timestamps.append(header.timestamp)
        self._cumulative_difficulty.append(1)
        self._ids.add(genesis.block_id())
        self._by_prev[GENESIS_PREV] = genesis
        self._height_by_id[genesis.block_id()] = 0

    # -- read API -------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the chain tip (genesis is height 0)."""
        return len(self.blocks) - 1

    @property
    def tip(self) -> Block:
        return self.blocks[-1]

    def current_difficulty(self) -> int:
        if self._difficulty_cache is not None and self._difficulty_cache[0] == self.height:
            return self._difficulty_cache[1]
        difficulty = self.adjuster.next_difficulty(self._timestamps, self._cumulative_difficulty)
        self._difficulty_cache = (self.height, difficulty)
        return difficulty

    def current_reward(self) -> int:
        return base_reward(self.generated_atomic)

    def block_at(self, height: int) -> Block:
        return self.blocks[height]

    def block_after(self, prev_id: bytes) -> Optional[Block]:
        """The block whose header references ``prev_id`` — the lookup at the
        heart of the pool-association method."""
        return self._by_prev.get(prev_id)

    def height_of(self, block: Block) -> int:
        return self._height_by_id[block.block_id()]

    def contains(self, block_id: bytes) -> bool:
        return block_id in self._ids

    # -- write API ------------------------------------------------------------

    def submit(self, block: Block) -> None:
        """Validate and append ``block``; raises :class:`BlockValidationError`."""
        header = block.header
        if header.prev_id != self.tip.block_id():
            raise BlockValidationError("block does not extend the chain tip")
        difficulty = self.current_difficulty()
        if not hash_meets_difficulty(block.pow_hash(self.pow_params), difficulty):
            raise BlockValidationError(f"PoW does not meet difficulty {difficulty}")
        expected = base_reward(self.generated_atomic)
        if block.reward() != expected:
            raise BlockValidationError(
                f"coinbase pays {block.reward()} but emission allows {expected}"
            )
        gen_in = block.coinbase.inputs[0]
        if gen_in != ("gen", self.height + 1):
            raise BlockValidationError("coinbase height mismatch")
        self._append_validated(block, difficulty)

    def _append_validated(self, block: Block, difficulty: int) -> None:
        self.blocks.append(block)
        self.generated_atomic += block.reward()
        self._timestamps.append(block.header.timestamp)
        self._cumulative_difficulty.append(self._cumulative_difficulty[-1] + difficulty)
        self._ids.add(block.block_id())
        self._by_prev[block.header.prev_id] = block
        self._height_by_id[block.block_id()] = len(self.blocks) - 1

    def force_append(self, block: Block) -> None:
        """Append without the PoW check — used by the *network process*
        simulation, where block arrival times are drawn statistically
        instead of hashing through real nonce searches (see
        :mod:`repro.analysis.network`). All structural checks still apply.
        """
        if block.header.prev_id != self.tip.block_id():
            raise BlockValidationError("block does not extend the chain tip")
        self._append_validated(block, self.current_difficulty())

    # -- statistics ------------------------------------------------------------

    def median_difficulty(self, last: int = 0) -> int:
        diffs = [
            self._cumulative_difficulty[i] - self._cumulative_difficulty[i - 1]
            for i in range(1, len(self._cumulative_difficulty))
        ]
        if last:
            diffs = diffs[-last:]
        if not diffs:
            return self.adjuster.initial_difficulty
        diffs.sort()
        return diffs[len(diffs) // 2]

    def total_rewards_atomic(self, start_height: int = 1, end_height: Optional[int] = None) -> int:
        end = self.height if end_height is None else end_height
        return sum(self.blocks[h].reward() for h in range(start_height, end + 1))


def pseudo_id(seed: bytes) -> bytes:
    """Deterministic 32-byte id for test fixtures."""
    return hashlib.sha3_256(b"pseudo" + seed).digest()
