"""Monero-style varint (base-128 little-endian, same wire format as
unsigned LEB128). Kept as its own module because block serialization
documents itself in terms of *varints* and the blockchain code should not
reach into the WebAssembly package for them.
"""

from __future__ import annotations


def encode(value: int) -> bytes:
    """Encode a non-negative integer as a Monero varint."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    i = offset
    while True:
        if i >= len(data):
            raise ValueError("truncated varint")
        byte = data[i]
        result |= (byte & 0x7F) << shift
        i += 1
        if not byte & 0x80:
            return result, i
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")
