"""Block and header serialization (Monero layout).

The *hashing blob* is the PoW input the paper keeps dissecting (Figure 1):

    varint(major) ∥ varint(minor) ∥ varint(timestamp) ∥ prev_id(32)
    ∥ nonce(4, little-endian)  ← the miner's search space
    ∥ merkle_root(32) ∥ varint(num_transactions)

Pools distribute this blob to miners; miners only ever vary the 4-byte
nonce. For contemporary timestamps the varint lengths are fixed, putting the
nonce at byte offset 39 — which is why Coinhive's obfuscation ("a simple XOR
with a fixed value at a fixed offset", Section 4.1) works at all.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.blockchain import varint
from repro.blockchain.hashing import CryptonightParams, DEFAULT_PARAMS, cryptonight
from repro.blockchain.merkle import tree_hash
from repro.blockchain.transactions import Transaction

#: Nonce offset in the hashing blob for contemporary (5-byte-varint)
#: timestamps — the "fixed offset" of Coinhive's countermeasure.
NONCE_OFFSET = 1 + 1 + 5 + 32

MAJOR_VERSION = 7  # Monero v7 (the CryptoNight-v1 era the paper measured)
MINOR_VERSION = 7


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header; ``nonce`` is the only PoW-variable field."""

    major: int
    minor: int
    timestamp: int
    prev_id: bytes
    nonce: int = 0

    def __post_init__(self) -> None:
        if len(self.prev_id) != 32:
            raise ValueError("prev_id must be 32 bytes")
        if not 0 <= self.nonce < 2**32:
            raise ValueError("nonce must fit 4 bytes")

    def serialize(self) -> bytes:
        out = bytearray()
        out += varint.encode(self.major)
        out += varint.encode(self.minor)
        out += varint.encode(self.timestamp)
        out += self.prev_id
        out += self.nonce.to_bytes(4, "little")
        return bytes(out)

    def with_nonce(self, nonce: int) -> "BlockHeader":
        return replace(self, nonce=nonce)

    def nonce_offset(self) -> int:
        """Byte offset of the nonce in the serialized header/blob."""
        return (
            len(varint.encode(self.major))
            + len(varint.encode(self.minor))
            + len(varint.encode(self.timestamp))
            + 32
        )


def hashing_blob(header: BlockHeader, merkle_root: bytes, num_txs: int) -> bytes:
    """Assemble the PoW input for a block template."""
    if len(merkle_root) != 32:
        raise ValueError("merkle_root must be 32 bytes")
    if num_txs < 1:
        raise ValueError("a block contains at least the coinbase")
    return header.serialize() + merkle_root + varint.encode(num_txs)


def set_blob_nonce(blob: bytes, header: BlockHeader, nonce: int) -> bytes:
    """Return ``blob`` with its embedded nonce replaced (miner inner loop)."""
    offset = header.nonce_offset()
    return blob[:offset] + nonce.to_bytes(4, "little") + blob[offset + 4 :]


@dataclass
class Block:
    """A full block: header plus ordered transactions (coinbase first)."""

    header: BlockHeader
    transactions: list = field(default_factory=list)
    _merkle_cache: Optional[bytes] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.transactions:
            raise ValueError("block must contain a coinbase transaction")
        if not self.transactions[0].is_coinbase:
            raise ValueError("first transaction must be the coinbase")

    @property
    def coinbase(self) -> Transaction:
        return self.transactions[0]

    def tx_hashes(self) -> list:
        return [tx.hash() for tx in self.transactions]

    def merkle_root(self) -> bytes:
        if self._merkle_cache is None:
            self._merkle_cache = tree_hash(self.tx_hashes())
        return self._merkle_cache

    def hashing_blob(self) -> bytes:
        return hashing_blob(self.header, self.merkle_root(), len(self.transactions))

    def pow_hash(self, params: CryptonightParams = DEFAULT_PARAMS) -> bytes:
        """CryptoNight PoW hash of this block's hashing blob."""
        return cryptonight(self.hashing_blob(), params)

    def block_id(self) -> bytes:
        """Block identifier: fast hash of the hashing blob (Monero-style).

        Distinct from the PoW hash — the chain links blocks by id, while the
        difficulty test applies to the (slow) PoW hash.
        """
        return hashlib.sha3_256(b"blockid" + self.hashing_blob()).digest()

    def reward(self) -> int:
        return self.coinbase.total_output()

    def miner_address(self) -> str:
        return self.coinbase.outputs[0][1]
