"""Difficulty retargeting.

A port of Monero's ``next_difficulty`` (cryptonote_basic difficulty.cpp):
take the last ``window`` blocks, sort their timestamps, cut ``cut`` outliers
from both ends, and set

    difficulty = ceil( Σ cumulative_difficulty_span × target / time_span )

so that the chain keeps its 120-second average block rate as hash rate
changes. The paper converts the observed difficulty back to a network hash
rate (difficulty / target ≈ hashes per second), which this module also
provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

DIFFICULTY_TARGET = 120  # seconds per block (Monero v2+)
DIFFICULTY_WINDOW = 720  # blocks
DIFFICULTY_CUT = 60      # outliers trimmed from each end
DIFFICULTY_LAG = 15


@dataclass
class DifficultyAdjuster:
    """Stateless retargeting calculator with configurable parameters.

    The simulation uses smaller windows than mainnet so short experiments
    still retarget; defaults match Monero's constants.
    """

    target: int = DIFFICULTY_TARGET
    window: int = DIFFICULTY_WINDOW
    cut: int = DIFFICULTY_CUT
    initial_difficulty: int = 1000

    def next_difficulty(
        self, timestamps: Sequence[int], cumulative_difficulties: Sequence[int]
    ) -> int:
        """Difficulty for the next block given per-block history.

        ``timestamps[i]`` and ``cumulative_difficulties[i]`` describe the
        i-th most recent blocks in chain order (oldest first). Both lists
        must have equal length; shorter-than-window histories are used as-is
        (chain bootstrap).
        """
        if len(timestamps) != len(cumulative_difficulties):
            raise ValueError("history lists must have equal length")
        length = len(timestamps)
        if length <= 1:
            return self.initial_difficulty

        timestamps = list(timestamps[-self.window :])
        cumulative_difficulties = list(cumulative_difficulties[-self.window :])
        length = len(timestamps)

        sorted_ts = sorted(timestamps)
        if length > 2 * self.cut + 2:
            cut_begin = self.cut
            cut_end = length - self.cut
        else:
            cut_begin = 0
            cut_end = length
        time_span = sorted_ts[cut_end - 1] - sorted_ts[cut_begin]
        if time_span <= 0:
            time_span = 1
        total_work = cumulative_difficulties[cut_end - 1] - cumulative_difficulties[cut_begin]
        if total_work <= 0:
            return self.initial_difficulty
        # ceil division, as in Monero
        return max(1, (total_work * self.target + time_span - 1) // time_span)

    def hashrate_from_difficulty(self, difficulty: int) -> float:
        """Network hash rate implied by a difficulty (hashes/second).

        The paper (Section 4.2): median difficulty 55.4G over the target of
        120 s ⇒ 462 MH/s.
        """
        return difficulty / self.target
