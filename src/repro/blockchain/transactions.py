"""Transactions and the coinbase.

The reproduction does not need Monero's ring signatures — what matters for
the pool-association method is that (a) every transaction has a stable
32-byte hash, (b) the coinbase transaction pays the block reward to a
specific address (the pool's), and (c) the coinbase is the first Merkle
leaf. Amounts are in atomic units (1 XMR = 10^12 atomic units), matching
Monero's piconero granularity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.blockchain import varint

ATOMIC_PER_XMR = 10**12


@dataclass(frozen=True)
class Transaction:
    """A transfer (or coinbase) transaction.

    ``extra`` carries arbitrary bytes — pools use it for their extra nonce,
    which is exactly why two pools (or two backends of one pool) never
    produce the same coinbase hash, and hence never the same Merkle root.
    """

    version: int
    unlock_time: int
    inputs: tuple            # for coinbase: ("gen", height)
    outputs: tuple           # ((amount_atomic, address), ...)
    extra: bytes = b""
    is_coinbase: bool = False

    def serialize(self) -> bytes:
        out = bytearray()
        out += varint.encode(self.version)
        out += varint.encode(self.unlock_time)
        out += varint.encode(len(self.inputs))
        for txin in self.inputs:
            if txin[0] == "gen":
                out += b"\xff"  # txin_gen tag
                out += varint.encode(txin[1])
            else:
                out += b"\x02"  # txin_to_key tag (simplified)
                key_image = txin[1]
                out += key_image if isinstance(key_image, bytes) else str(key_image).encode()
        out += varint.encode(len(self.outputs))
        for amount, address in self.outputs:
            out += varint.encode(amount)
            raw = address.encode("utf-8") if isinstance(address, str) else address
            out += varint.encode(len(raw)) + raw
        out += varint.encode(len(self.extra)) + self.extra
        return bytes(out)

    def hash(self) -> bytes:
        """32-byte transaction hash (SHA3-256 of the serialization)."""
        return hashlib.sha3_256(self.serialize()).digest()

    def total_output(self) -> int:
        return sum(amount for amount, _ in self.outputs)


def coinbase_transaction(
    height: int, reward_atomic: int, miner_address: str, extra_nonce: bytes = b""
) -> Transaction:
    """Build the coinbase (miner reward) transaction for ``height``.

    ``extra_nonce`` differentiates pool backends: a pool stuffs its own
    bytes into ``tx.extra``, changing the coinbase hash and thereby the
    Merkle root of every block template it hands to miners.
    """
    if reward_atomic <= 0:
        raise ValueError("coinbase reward must be positive")
    return Transaction(
        version=2,
        unlock_time=height + 60,  # Monero: coinbase locked for 60 blocks
        inputs=(("gen", height),),
        outputs=((reward_atomic, miner_address),),
        extra=extra_nonce,
        is_coinbase=True,
    )


@dataclass
class TransferFactory:
    """Generates plausible pending transfers for the mempool.

    Addresses and key images are drawn from a seeded stream; a monotone
    counter guarantees distinct hashes even for identical parameters.
    """

    rng: object  # RngStream
    _counter: int = field(default=0)

    def make(self, amount_atomic: int | None = None) -> Transaction:
        self._counter += 1
        amount = amount_atomic if amount_atomic is not None else self.rng.randint(1, 500) * (ATOMIC_PER_XMR // 100)
        key_image = self.rng.randbytes(32)
        dest = f"moneroaddr{self.rng.getrandbits(48):012x}"
        return Transaction(
            version=2,
            unlock_time=0,
            inputs=(("key", key_image),),
            outputs=((amount, dest),),
            extra=self._counter.to_bytes(8, "little"),
        )
