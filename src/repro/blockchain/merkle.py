"""Monero's tree-hash (Merkle root) algorithm.

Faithful port of ``crypto/tree-hash.c`` from the Monero source: for a
non-power-of-two leaf count ``n`` the bottom layer keeps the first
``2·cnt − n`` hashes verbatim (where ``cnt`` is the largest power of two
with ``cnt < n ≤ 2·cnt``) and pairs up the rest, then reduces layers
pairwise. The first leaf is always the coinbase transaction hash — the
property the paper's pool-association method relies on: a PoW input's
Merkle root uniquely commits to the pool's own coinbase.
"""

from __future__ import annotations

import hashlib
from typing import Sequence


def _h(data: bytes) -> bytes:
    """Monero uses Keccak; SHA3-256 is our stand-in throughout."""
    return hashlib.sha3_256(data).digest()


def tree_hash_cnt(count: int) -> int:
    """Largest power of two ``pow`` with ``pow < count <= 2*pow``."""
    if count < 3:
        raise ValueError("tree_hash_cnt requires count >= 3")
    pow_ = 1
    while pow_ * 2 < count:
        pow_ *= 2
    return pow_


def tree_hash(hashes: Sequence[bytes]) -> bytes:
    """Merkle root over transaction hashes, Monero layout.

    - 1 leaf: the root *is* that hash (no extra hashing),
    - 2 leaves: ``H(h0 ∥ h1)``,
    - n ≥ 3: the tree-hash reduction described in the module docstring.
    """
    count = len(hashes)
    if count == 0:
        raise ValueError("tree_hash of zero transactions")
    for h in hashes:
        if len(h) != 32:
            raise ValueError("tree_hash leaves must be 32-byte hashes")
    if count == 1:
        return bytes(hashes[0])
    if count == 2:
        return _h(hashes[0] + hashes[1])

    cnt = tree_hash_cnt(count)
    ints: list[bytes] = list(hashes[: 2 * cnt - count])
    i = 2 * cnt - count
    j = 2 * cnt - count
    while j < cnt:
        ints.append(_h(hashes[i] + hashes[i + 1]))
        i += 2
        j += 1
    assert i == count

    while cnt > 2:
        cnt //= 2
        ints = [_h(ints[2 * k] + ints[2 * k + 1]) for k in range(cnt)]
    return _h(ints[0] + ints[1])


def tree_branch_covers(root: bytes, hashes: Sequence[bytes]) -> bool:
    """Check whether ``hashes`` reproduce ``root`` (convenience predicate)."""
    try:
        return tree_hash(hashes) == root
    except ValueError:
        return False
