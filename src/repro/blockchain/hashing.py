"""CryptoNight stand-in proof-of-work hash.

Real CryptoNight [CNS008] initializes a 2 MB scratchpad from a Keccak state,
performs ~1M AES-assisted memory-hard mixing iterations, and finalizes with
one of four hash functions. Running that in pure Python would make every
experiment intractable, so we implement a *scaled* CryptoNight with the same
architecture — Keccak-family initialization (SHA3-256), scratchpad
expansion, data-dependent memory mixing, finalization — and configurable
scratchpad size and iteration count.

What the paper's experiments need from the PoW is:

- determinism and uniformity (difficulty statistics work out),
- a tunable cost knob (hash-duration modelling at 20 H/s is arithmetic,
  not wall-clock),
- the Monero acceptance test ``hash_as_int × difficulty < 2^256``.

All three are preserved exactly.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

_GOLDEN = 0x9E3779B97F4A7C15  # 64-bit golden-ratio multiplier used in mixing
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class CryptonightParams:
    """Cost parameters of the stand-in hash.

    ``scratchpad_bytes`` must be a power of two and a multiple of 64.
    Real CryptoNight: 2 MiB / 524288 iterations. The defaults below are the
    simulation profile used across the reproduction; ``FAST`` is for unit
    tests, ``HEAVY`` approximates a hash slow enough to measure.
    """

    scratchpad_bytes: int = 4096
    iterations: int = 64

    def __post_init__(self) -> None:
        sp = self.scratchpad_bytes
        if sp < 128 or sp & (sp - 1) or sp % 64:
            raise ValueError("scratchpad_bytes must be a power of two >= 128")
        if self.iterations < 1:
            raise ValueError("iterations must be positive")


#: Default simulation profile (used by the chain and pools).
DEFAULT_PARAMS = CryptonightParams()
#: Cheap profile for tests that hash a lot.
FAST_PARAMS = CryptonightParams(scratchpad_bytes=128, iterations=4)
#: Expensive profile for performance benchmarks.
HEAVY_PARAMS = CryptonightParams(scratchpad_bytes=65536, iterations=4096)


def _rotl64(value: int, count: int) -> int:
    count &= 63
    return ((value << count) | (value >> (64 - count))) & _MASK64


def cryptonight(data: bytes, params: CryptonightParams = DEFAULT_PARAMS) -> bytes:
    """Compute the 32-byte stand-in CryptoNight hash of ``data``.

    Stages mirror the real function:

    1. *Init*: SHA3-256 of the input seeds the state.
    2. *Expand*: the scratchpad is filled by chaining BLAKE2b blocks.
    3. *Mix*: data-dependent reads/writes over the scratchpad — addresses
       derive from the evolving state, so the whole pad stays hot.
    4. *Finalize*: BLAKE2b over state and scratchpad digest.
    """
    state = hashlib.sha3_256(data).digest()

    # Stage 2: expansion
    pad = bytearray(params.scratchpad_bytes)
    block = hashlib.blake2b(state, digest_size=64).digest()
    for offset in range(0, params.scratchpad_bytes, 64):
        pad[offset : offset + 64] = block
        block = hashlib.blake2b(block, digest_size=64).digest()

    # Stage 3: memory-hard mixing
    words = memoryview(pad).cast("Q")
    num_words = params.scratchpad_bytes // 8
    mask = num_words - 1
    a, b = struct.unpack_from("<QQ", state, 0)
    c, d = struct.unpack_from("<QQ", state, 16)
    for _ in range(params.iterations):
        idx = a & mask
        value = words[idx]
        a = (a ^ value) & _MASK64
        b = (b + a * _GOLDEN) & _MASK64
        words[idx] = b ^ value
        idx2 = b & mask
        c = (c ^ words[idx2]) & _MASK64
        words[idx2] = (c + d) & _MASK64
        d = _rotl64(d ^ a, 13)
        a = _rotl64(a, 29) ^ c

    # Stage 4: finalization — fold the pad so every byte matters
    fold = hashlib.blake2b(digest_size=32)
    fold.update(state)
    fold.update(struct.pack("<QQQQ", a, b, c, d))
    fold.update(pad)
    return fold.digest()


def hash_meets_difficulty(pow_hash: bytes, difficulty: int) -> bool:
    """Monero's acceptance test: ``hash × difficulty < 2^256``.

    The hash is interpreted little-endian, as in Monero's
    ``check_hash``. Equivalent to ``hash < 2^256 / difficulty`` but exact.
    """
    if len(pow_hash) != 32:
        raise ValueError("PoW hash must be 32 bytes")
    if difficulty < 1:
        raise ValueError("difficulty must be >= 1")
    return int.from_bytes(pow_hash, "little") * difficulty < (1 << 256)


def expected_hashes(difficulty: int) -> float:
    """Expected number of hash draws to meet ``difficulty`` (= difficulty)."""
    return float(difficulty)
