"""Command-line interface.

Installed as ``repro-mining``. Subcommands mirror the paper's workflows:

- ``fingerprint`` — signature + features + classification of .wasm files,
- ``nocoin``      — match an HTML file's script tags against the list,
- ``crawl``       — run a scaled zgrab+Chrome campaign over a dataset,
- ``serve``       — one-shot verdict-server demo over specific domains,
- ``loadgen``     — seeded open-loop load run against the verdict server,
- ``shortlinks``  — the cnhv.co study summary,
- ``attribute``   — simulate the network and attribute Coinhive blocks,
- ``corpus``      — dump the synthetic Wasm corpus to disk,
- ``obs``         — analyze persisted run directories: ``obs report RUN``
  (critical paths, slowest sites, Chrome-trace export),
  ``obs diff BASE HEAD`` (counter/latency deltas, ``--fail-on`` gates),
  ``obs explain RUN DOMAIN`` (the evidence chain behind one verdict), and
  ``obs scorecard RUN`` (per-detector precision/recall vs ground truth,
  with ``--fail-on`` quality gates), and ``obs slo RUN`` (service latency
  and shed-rate gates over a ``loadgen --run-dir`` run).

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.core.classifier import MinerClassifier
    from repro.core.features import extract_features
    from repro.core.signatures import build_reference_database, wasm_signature
    from repro.wasm.decoder import WasmDecodeError

    classifier = MinerClassifier(database=build_reference_database())
    status = 0
    for path in args.files:
        data = pathlib.Path(path).read_bytes()
        try:
            signature = wasm_signature(data)
        except WasmDecodeError as exc:
            print(f"{path}: not a decodable wasm module ({exc})")
            status = 1
            continue
        features = extract_features(data)
        verdict = classifier.classify_wasm(data)
        marker = "MINER" if verdict.is_miner else "benign"
        print(f"{path}: {marker} family={verdict.family} via={verdict.method}")
        print(f"  signature : {signature}")
        print(
            f"  features  : instrs={features.total_instructions}"
            f" xor={features.xor_count} shift={features.shift_count}"
            f" rot={features.rotate_count} load={features.load_count}"
            f" float={features.float_count} mem={features.memory_pages}p"
        )
        if features.name_hints:
            print(f"  name hints: {', '.join(features.name_hints[:5])}")
    return status


def _cmd_nocoin(args: argparse.Namespace) -> int:
    from repro.core.nocoin import default_nocoin_list, FilterList
    from repro.web.html import extract_scripts

    if args.list:
        lines = pathlib.Path(args.list).read_text().splitlines()
        nocoin = FilterList.from_lines(lines)
    else:
        nocoin = default_nocoin_list()
    status = 0
    for path in args.files:
        html = pathlib.Path(path).read_text(errors="replace")
        hits = nocoin.match_scripts(extract_scripts(html))
        if hits:
            labels = sorted({rule.label or rule.raw for rule in hits})
            print(f"{path}: HIT ({', '.join(labels)})")
            status = 2
        else:
            print(f"{path}: clean")
    return status


def _print_shard_metrics(metrics, title: str) -> None:
    from repro.analysis.metrics import CampaignMetrics
    from repro.analysis.reporting import render_table

    print(render_table(CampaignMetrics.SUMMARY_HEADER, metrics.summary_rows(), title=title))
    print(
        f"wall={metrics.wall_seconds:.2f}s mode={metrics.mode} workers={metrics.workers} "
        f"rate={metrics.aggregate_rate:.0f} domains/s "
        f"efficiency={metrics.parallel_efficiency:.0%}"
        + (f" FAILED SHARDS: {metrics.failed_shards}" if metrics.failed_shards else "")
    )


def _print_fault_ledger(ledger) -> None:
    from repro.analysis.reporting import render_table
    from repro.faults.ledger import FaultLedger

    if not ledger.has_events():
        return
    print(render_table(FaultLedger.SUMMARY_HEADER, ledger.summary_rows(), title="\nfault ledger"))
    print(ledger.status_line())


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
    from repro.analysis.parallel import (
        ParallelConfig,
        PopulationRecipe,
        ShardedChromeCampaign,
        ShardedZgrabCampaign,
    )
    from repro.analysis.reporting import render_table
    from repro.faults.ledger import FaultLedger
    from repro.faults.plan import build_fault_plan
    from repro.faults.resilience import ResiliencePolicy
    from repro.internet.population import build_population
    from repro.obs.heartbeat import ProgressReporter
    from repro.obs.profile import NULL_OBS, make_obs, render_profile

    from repro.core import fastpath

    fastpath.set_enabled(args.fastpath)
    timeseries_interval = getattr(args, "timeseries_interval", 0.0) or 0.0
    if timeseries_interval < 0:
        print("error: --timeseries-interval must be >= 0", file=sys.stderr)
        return 2
    observe = (
        bool(args.trace_out)
        or args.profile
        or args.run_dir is not None
        or timeseries_interval > 0
    )
    obs = make_obs(prefix="crawl") if observe else NULL_OBS
    progress = ProgressReporter(args.heartbeat) if args.heartbeat > 0 else None
    recorder = None
    if timeseries_interval > 0:
        from repro.obs.clock import get_clock
        from repro.obs.timeseries import RecorderProgress, TimeSeriesRecorder

        # anchor the tick origin at the current obs-clock reading: under a
        # PerfClock the absolute time is arbitrary, and TickRecord times
        # are relative to this origin anyway
        recorder = TimeSeriesRecorder(
            registry=obs.registry,
            interval=timeseries_interval,
            origin=get_clock().now(),
        )
        progress = RecorderProgress(recorder, progress)
    plan = build_fault_plan(args.fault_profile, seed=args.seed)
    population_size = getattr(args, "population_size", 0) or 0
    streaming = population_size > 0
    if streaming:
        from repro.internet.population import DATASETS

        if DATASETS[args.dataset].chrome_crawl and not getattr(args, "zgrab_only", False):
            # refuse rather than silently skip the Chrome plane: a streamed
            # chrome-crawl dataset would produce tables missing half the
            # paper's numbers without saying so
            print(
                f"error: --population-size streams the zgrab plane only, but "
                f"dataset {args.dataset!r} includes a Chrome pass; pass "
                f"--zgrab-only to run just the zgrab plane, or drop "
                f"--population-size and use --scale for Chrome experiments",
                file=sys.stderr,
            )
            return 2
    # chaos and checkpoint/resume need the sharded executor (it carries the
    # fault ledgers and the per-shard journals), even with one serial shard;
    # run dirs, heartbeats, and streaming populations ride on it for the
    # same reason
    parallel = (
        streaming
        or args.shards > 1 or args.workers > 1
        or plan is not None or args.resume_from is not None
        or args.run_dir is not None or progress is not None
    )
    if streaming:
        from repro.internet.population import DATASETS
        from repro.internet.streaming import StreamingPopulation, parse_strata

        strata_text = getattr(args, "strata", "") or ""
        strata = (
            parse_strata(strata_text, DATASETS[args.dataset]) if strata_text else None
        )
        population = StreamingPopulation(
            args.dataset,
            seed=args.seed,
            size=population_size,
            strata=strata,
            sample_per_stratum=getattr(args, "sample_per_stratum", 0) or 0,
        )
    else:
        population = build_population(args.dataset, seed=args.seed, scale=args.scale)
    if plan is not None:
        population.attach_fault_plan(plan)
        print(f"fault profile: {args.fault_profile} (seed={args.seed})")
    signature_db = getattr(args, "signature_db", None)
    if signature_db:
        print(f"signature db: {signature_db}")
    population_ledger = FaultLedger()
    if streaming:
        scanned = len(population.scan_indices())
        print(
            f"dataset={args.dataset} population={population.size} "
            f"scanned={scanned} strata="
            + ",".join(s.name for s in population.strata)
        )
    else:
        print(f"dataset={args.dataset} sites={len(population.sites)} scale={args.scale}")
    if parallel:
        config = ParallelConfig(
            shards=args.shards,
            workers=args.workers,
            mode=args.executor,
            resilience=ResiliencePolicy() if plan is not None else None,
            checkpoint_dir=args.resume_from,
        )
        zgrab = ShardedZgrabCampaign(
            population=population, config=config, obs=obs, progress=progress
        )
        scans = []
        for scan_index in (0, 1):
            scans.append(zgrab.scan(scan_index))
            if zgrab.metrics is not None:
                population_ledger.merge(zgrab.metrics.fault_ledger)
    else:
        zgrab = ZgrabCampaign(population=population, obs=obs)
        with obs.span("campaign", kind="zgrab", mode="sequential"):
            scans = zgrab.both_scans()
    from repro.graph.model import Graph

    verdicts = []  # populated only on observed runs (campaigns gate)
    run_graph = Graph()
    for scan_index, scan in enumerate(scans):
        verdicts.extend(scan.verdicts)
        if scan.graph is not None:
            run_graph.merge(scan.graph)
        # campaign-level summary counters land in the persisted metrics, so
        # run diffs (and CI --fail-on gates) can compare detection outcomes
        obs.inc(f"crawl.zgrab{scan_index}.domains_probed", scan.domains_probed)
        obs.inc(f"crawl.zgrab{scan_index}.nocoin_domains", scan.nocoin_domains)
        obs.inc(f"crawl.zgrab{scan_index}.fetch_failures", scan.fetch_failures)
    rows = [[s.scan_date, s.nocoin_domains, f"{s.prevalence:.4%}"] for s in scans]
    print(render_table(["scan", "NoCoin domains", "prevalence"], rows, title="\nzgrab pass"))
    for scan_index, scan in enumerate(scans):
        if not scan.stratum_rows:
            continue
        for row in scan.stratum_rows:
            obs.inc(f"crawl.zgrab{scan_index}.stratum.{row.stratum}.probed", row.probed)
            obs.inc(f"crawl.zgrab{scan_index}.stratum.{row.stratum}.hits", row.hits)
        rows = [
            [
                row.stratum,
                row.probed,
                row.hits,
                f"{row.prevalence:.4%}",
                row.population_size,
                row.estimated_domains,
            ]
            for row in scan.stratum_rows
        ]
        print(
            render_table(
                ["stratum", "probed", "hits", "prevalence", "stratum size", "est. domains"],
                rows,
                title=f"\nper-stratum prevalence (scan {scan_index})",
            )
        )
    if parallel and zgrab.metrics is not None:
        _print_shard_metrics(zgrab.metrics, "\nzgrab shard metrics (second scan)")
    if not streaming and population.spec.chrome_crawl:
        if parallel:
            chrome = ShardedChromeCampaign(
                population=population,
                recipe=PopulationRecipe(
                    args.dataset,
                    seed=args.seed,
                    scale=args.scale,
                    fault_profile=args.fault_profile or "",
                ),
                config=config,
                signature_db_path=signature_db,
                obs=obs,
                progress=progress,
            )
            result = chrome.run()
            if chrome.metrics is not None:
                population_ledger.merge(chrome.metrics.fault_ledger)
        else:
            chrome = None
            detector = None
            if signature_db:
                from repro.core.detector import PageDetector
                from repro.core.signatures import SignatureDatabase

                detector = PageDetector()
                detector.classifier.database = SignatureDatabase.from_json(
                    pathlib.Path(signature_db).read_text()
                )
            with obs.span("campaign", kind="chrome", mode="sequential"):
                result = ChromeCampaign(
                    population=population, detector=detector, obs=obs
                ).run()
        verdicts.extend(result.verdicts)
        if result.graph is not None:
            run_graph.merge(result.graph)
        tab = result.cross_tab
        obs.inc("crawl.chrome.wasm_miners", tab.wasm_miner_hits)
        obs.inc("crawl.chrome.nocoin_hits", tab.nocoin_hits)
        rows = [
            ["Wasm miner sites", tab.wasm_miner_hits],
            ["NoCoin hits", tab.nocoin_hits],
            ["missed by NoCoin", f"{tab.miners_missed_by_nocoin} ({tab.missed_fraction:.0%})"],
            ["detection factor", f"{tab.detection_factor:.1f}x"],
        ]
        print(render_table(["metric", "value"], rows, title="\nChrome pass"))
        rows = list(result.signature_counts.most_common(5))
        print(render_table(["family", "sites"], rows, title="\ntop signatures"))
        if parallel and chrome is not None and chrome.metrics is not None:
            _print_shard_metrics(chrome.metrics, "\nChrome shard metrics")
    if plan is not None or args.resume_from is not None:
        _print_fault_ledger(population_ledger)
    if args.profile:
        print()
        print(render_profile(obs.registry, title="stage profile"))
    if args.trace_out:
        obs.tracer.write_jsonl(args.trace_out)
        print(f"trace: {len(obs.tracer.spans)} spans -> {args.trace_out}")
    if recorder is not None:
        from repro.obs.clock import get_clock

        recorder.finish(get_clock().now())
        fired = sum(1 for event in recorder.alerts if event.kind == "fire")
        print(
            f"timeseries: {len(recorder.records)} ticks at "
            f"{timeseries_interval:g}s, alerts fired {fired}"
        )
    if args.run_dir is not None:
        from repro.obs.ledger import RunManifest, write_run
        from repro.obs.metrics import MetricsRegistry

        manifest = RunManifest.build(
            "crawl",
            {
                "dataset": args.dataset,
                "seed": args.seed,
                "scale": args.scale,
                "shards": args.shards,
                "workers": args.workers,
                "executor": args.executor,
                "fault_profile": args.fault_profile or "",
                "heartbeat": args.heartbeat,
                "timeseries_interval": timeseries_interval,
                "signature_db": signature_db or "",
                "population_size": population_size,
                "strata": getattr(args, "strata", "") or "",
                "sample_per_stratum": getattr(args, "sample_per_stratum", 0) or 0,
                "fastpath": bool(args.fastpath),
            },
        )
        registry = MetricsRegistry()
        registry.merge(obs.registry)
        registry.merge(population_ledger.as_registry())
        write_run(
            args.run_dir, manifest, registry, obs.tracer.spans, population_ledger,
            verdicts=verdicts,
            timeseries=recorder.timeseries() if recorder is not None else None,
            graph=run_graph if run_graph else None,
        )
        print(f"run artifacts ({manifest.run_id}) -> {args.run_dir}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.core import fastpath
    from repro.faults.plan import build_fault_plan
    from repro.internet.population import build_population
    from repro.service.loadgen import LoadgenConfig, build_requests, synthesize_capture
    from repro.service.server import ServiceRequest, VerdictServer
    from repro.wasm.builder import WasmCorpusBuilder

    interval = args.timeseries_interval
    if interval < 0:
        print("error: --timeseries-interval must be >= 0", file=sys.stderr)
        return 2
    if interval > 0 and args.duration <= 0:
        print(
            "error: --timeseries-interval needs --duration; the recorder ticks "
            "along the simulated arrival schedule",
            file=sys.stderr,
        )
        return 2
    if args.duration > 0 and args.domains:
        print(
            "error: --duration runs a seeded arrival schedule and cannot be "
            "combined with explicit domains",
            file=sys.stderr,
        )
        return 2
    if interval > 0 and interval >= args.duration:
        print(
            f"error: --timeseries-interval ({interval:g}s) must be smaller than "
            f"--duration ({args.duration:g}s) — otherwise the run records at "
            f"most one tick and every burn-rate window is unpopulated",
            file=sys.stderr,
        )
        return 2
    fastpath.set_enabled(args.fastpath)
    population = build_population(args.dataset, seed=args.seed, scale=args.scale)
    server = VerdictServer(
        population=population,
        fault_plan=build_fault_plan(args.fault_profile, seed=args.seed),
    )
    duration_mode = args.duration > 0
    recorder = None
    if duration_mode:
        config = LoadgenConfig(
            seed=args.seed,
            dataset=args.dataset,
            scale=args.scale,
            rate=args.rate,
            duration=args.duration,
        )
        requests = build_requests(config, population)
        if interval > 0:
            from repro.obs.alerts import default_service_rules
            from repro.obs.timeseries import TimeSeriesRecorder

            flush_path = None
            if args.run_dir is not None:
                flush_path = pathlib.Path(args.run_dir) / "timeseries.jsonl"
                flush_path.parent.mkdir(parents=True, exist_ok=True)
            recorder = TimeSeriesRecorder(
                registry=server.metrics,
                interval=interval,
                rules=default_service_rules(),
                flush_path=flush_path,
            )
            server.recorder = recorder
        if args.heartbeat > 0:
            from repro.obs.heartbeat import ProgressReporter

            server.progress = ProgressReporter(
                args.heartbeat,
                label="serve",
                clock=lambda: server.clock.now,
                health=server.service_health,
            )
        print(
            f"dataset={args.dataset} offered={args.rate:g}r/s x "
            f"{args.duration:g}s capacity~{server.policy.nominal_capacity:.0f}r/s"
        )
    elif args.domains:
        sites = {site.domain: site for site in population.sites}
        corpus = WasmCorpusBuilder(root_seed=args.seed)
        cache: dict = {}
        requests = []
        for index, domain in enumerate(args.domains):
            site = sites.get(domain)
            if site is None:
                print(
                    f"error: {domain!r} is not in the {args.dataset} population "
                    f"(scale={args.scale})",
                    file=sys.stderr,
                )
                return 2
            wasm_dumps, websocket_urls = synthesize_capture(site, corpus, cache)
            arrival = index * 0.1  # spaced arrivals: a demo, not a load test
            requests.append(
                ServiceRequest(
                    tenant="cli",
                    domain=domain,
                    arrival=arrival,
                    deadline=arrival + server.policy.request_deadline,
                    wasm_dumps=wasm_dumps,
                    websocket_urls=websocket_urls,
                    sequence=index,
                )
            )
    else:
        config = LoadgenConfig(seed=args.seed, dataset=args.dataset, scale=args.scale)
        requests = build_requests(config, population)[: args.requests]
    responses = server.run(requests)
    if recorder is not None:
        recorder.finish(server.clock.now)
    if not duration_mode:
        # the per-domain verdict table is a demo view; a --duration run
        # serves rate x duration requests and summarizes instead
        rows = []
        for response in responses:
            if response.status == "ok":
                verdict = "MINER" if response.is_miner else "clean"
                detail = response.method if response.is_miner else ""
            else:
                verdict = response.status.upper()
                detail = response.reason
            rows.append(
                [
                    response.request.domain,
                    verdict,
                    detail,
                    response.tier,
                    f"{response.latency * 1000:.0f}ms",
                    response.bundle_version,
                ]
            )
        print(
            render_table(
                ["domain", "verdict", "via", "tier", "latency", "bundle"],
                rows,
                title="verdicts",
            )
        )
    metrics = server.metrics
    print(
        f"offered={metrics.counter('service.requests.offered')} "
        f"completed={metrics.counter('service.requests.completed')} "
        f"miners={metrics.counter('service.verdict.miner')} "
        f"errors={metrics.counter('service.fetch.errors')}"
    )
    if recorder is not None:
        fired = sum(1 for event in recorder.alerts if event.kind == "fire")
        resolved = sum(1 for event in recorder.alerts if event.kind == "resolve")
        print(
            f"timeseries: {len(recorder.records)} ticks at {interval:g}s, "
            f"alerts fired/resolved {fired}/{resolved}"
        )
        for event in recorder.alerts:
            print(f"  [{event.kind}] {event.summary}")
    _print_fault_ledger(server.ledger)
    if args.run_dir is not None:
        from repro.obs.ledger import RunManifest, write_run
        from repro.obs.metrics import MetricsRegistry

        manifest = RunManifest.build(
            "serve",
            {
                "dataset": args.dataset,
                "seed": args.seed,
                "scale": args.scale,
                "rate": args.rate,
                "duration": args.duration,
                "requests": 0 if duration_mode else len(requests),
                "domains": ",".join(args.domains or []),
                "fault_profile": args.fault_profile or "",
                "timeseries_interval": interval,
                "heartbeat": args.heartbeat,
                "fastpath": bool(args.fastpath),
            },
        )
        registry = MetricsRegistry()
        registry.merge(server.metrics)
        registry.merge(server.ledger.as_registry())
        from repro.graph.build import graph_from_verdicts

        graph = graph_from_verdicts(server.verdicts)
        write_run(
            args.run_dir, manifest, registry, [], server.ledger,
            verdicts=server.verdicts,
            timeseries=recorder.timeseries() if recorder is not None else None,
            graph=graph if graph else None,
        )
        print(f"run artifacts ({manifest.run_id}) -> {args.run_dir}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.core import fastpath
    from repro.service.loadgen import LoadgenConfig, run_loadgen

    fastpath.set_enabled(args.fastpath)
    if args.timeseries_interval < 0:
        print("error: --timeseries-interval must be >= 0", file=sys.stderr)
        return 2
    config = LoadgenConfig(
        seed=args.seed,
        dataset=args.dataset,
        scale=args.scale,
        rate=args.rate,
        duration=args.duration,
        tenants=args.tenants,
        fault_profile=args.fault_profile or "",
        reload_at=tuple(args.reload_at or []),
        bad_reload_at=tuple(args.bad_reload_at or []),
        timeseries_interval=args.timeseries_interval,
        cooldown=args.cooldown,
        heartbeat=args.heartbeat,
    )
    print(
        f"dataset={config.dataset} offered={config.rate:.0f}r/s x "
        f"{config.duration:.0f}s tenants={config.tenants} "
        f"capacity~{config.policy.nominal_capacity:.0f}r/s"
        + (f" faults={config.fault_profile}" if config.fault_profile else "")
    )
    flush_path = None
    if args.run_dir is not None and config.timeseries_interval > 0:
        flush_path = pathlib.Path(args.run_dir) / "timeseries.jsonl"
        flush_path.parent.mkdir(parents=True, exist_ok=True)
    report = run_loadgen(config, flush_path=flush_path)
    print(render_table(["metric", "value"], report.summary_rows(), title="\nload report"))
    if report.recorder is not None:
        for event in report.recorder.alerts:
            print(f"[{event.kind}] {event.summary}")
    _print_fault_ledger(report.server.ledger)
    if args.run_dir is not None:
        from repro.obs.ledger import RunManifest, write_run
        from repro.obs.metrics import MetricsRegistry

        manifest = RunManifest.build(
            "loadgen",
            {
                "dataset": config.dataset,
                "seed": config.seed,
                "scale": config.scale,
                "rate": config.rate,
                "duration": config.duration,
                "tenants": config.tenants,
                "fault_profile": config.fault_profile,
                "reload_at": ",".join(str(t) for t in config.reload_at),
                "bad_reload_at": ",".join(str(t) for t in config.bad_reload_at),
                "timeseries_interval": config.timeseries_interval,
                "cooldown": config.cooldown,
                "heartbeat": config.heartbeat,
                "fastpath": bool(args.fastpath),
            },
        )
        registry = MetricsRegistry()
        registry.merge(report.server.metrics)
        registry.merge(report.server.ledger.as_registry())
        from repro.graph.build import graph_from_verdicts

        graph = graph_from_verdicts(report.server.verdicts)
        write_run(
            args.run_dir, manifest, registry, [], report.server.ledger,
            verdicts=report.server.verdicts,
            timeseries=report.timeseries,
            graph=graph if graph else None,
        )
        print(f"run artifacts ({manifest.run_id}) -> {args.run_dir}")
    return 0


def _cmd_shortlinks(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.analysis.shortlink import ShortLinkStudy
    from repro.internet.shortlinks import build_shortlink_population

    population = build_shortlink_population(seed=args.seed, scale=args.scale)
    study = ShortLinkStudy(population=population, sample_per_top_user=args.sample)
    ranks = study.links_per_token()
    hashes = study.hash_requirements()
    rows = [
        ["links", ranks.total_links],
        ["tokens", len(ranks.counts_by_rank)],
        ["top-1 share", f"{ranks.top1_share:.1%}"],
        ["top-10 share", f"{ranks.topn_share(10):.1%}"],
        ["≤1024 hashes (unbiased)", f"{hashes.share_resolvable_within(1024):.0%}"],
        ["max required hashes", max(hashes.all_links)],
    ]
    print(render_table(["metric", "value"], rows, title="cnhv.co study"))
    if args.resolve:
        destinations = study.destinations()
        rows = list(destinations.top_user_domains.most_common(10))
        print(render_table(["destination", "count"], rows, title="\ntop-creator destinations"))
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    from repro.analysis.network import NetworkSimConfig, simulate_network
    from repro.analysis.reporting import render_table
    from repro.sim.clock import utc_timestamp

    start = utc_timestamp(2018, 4, 26)
    config = NetworkSimConfig(seed=args.seed, start=start, end=start + args.days * 86400)
    observation = simulate_network(config)
    rows = [
        ["chain blocks", observation.chain.height],
        ["attributed to Coinhive", len(observation.attributed)],
        ["recall vs ground truth", f"{observation.attribution_recall():.1%}"],
        ["share of all blocks", f"{observation.overall_share():.2%}"],
        ["median difficulty", f"{observation.chain.median_difficulty(last=5000) / 1e9:.1f}G"],
    ]
    print(render_table(["metric", "value"], rows, title=f"{args.days}-day observation"))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.analysis.runner import ReproductionConfig, run_reproduction

    config = ReproductionConfig(
        seed=args.seed,
        fastpath=bool(args.fastpath),
        crawl_scale=args.crawl_scale,
        population_size=args.population_size,
        strata=args.strata,
        sample_per_stratum=args.sample_per_stratum,
        shortlink_scale=args.shortlink_scale,
        network_days=args.days,
        crawl_shards=args.shards,
        crawl_workers=args.workers,
        crawl_executor=args.executor,
        fault_profile=args.fault_profile or "",
        checkpoint_dir=args.resume_from,
        trace_out=args.trace_out,
        profile=args.profile,
        run_dir=args.run_dir,
        heartbeat=args.heartbeat,
        timeseries_interval=args.timeseries_interval,
    )
    report = run_reproduction(config)
    markdown = report.to_markdown()
    if args.out:
        pathlib.Path(args.out).write_text(markdown)
        print(f"report written to {args.out} ({report.elapsed_seconds:.1f}s)")
    else:
        print(markdown)
    return 0


def _fmt_ns(ns: int) -> str:
    if abs(ns) >= 1_000_000_000:
        return f"{ns / 1e9:.3f}s"
    return f"{ns / 1e6:.2f}ms"


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.reporting import render_table
    from repro.faults.ledger import FaultLedger
    from repro.obs import analyze
    from repro.obs.ledger import TornRunError, load_run

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    manifest = artifacts.manifest
    print(
        f"run {manifest.run_id} command={manifest.command} "
        f"git={manifest.git_describe} spans={len(artifacts.spans)}"
    )
    print("  " + " ".join(f"{k}={v}" for k, v in sorted(manifest.params.items())))
    if not artifacts.complete:
        print("WARNING: torn run (no COMPLETE marker) — artifacts may be partial")

    # which shard bounded each campaign, and which stage bounded that shard
    path_rows = []
    for path in analyze.critical_paths(artifacts.spans):
        root_label = path.root.tags.get("kind", path.root.name)
        dataset = path.root.tags.get("dataset", "")
        if dataset:
            root_label = f"{dataset}/{root_label}"
        bounding_label = (
            f"shard {path.bounding.tags.get('shard', '?')}"
            if path.bounding is not None
            else "(unsharded)"
        )
        share = path.path_ns / path.wall_ns if path.wall_ns else 0.0
        path_rows.append(
            [
                root_label,
                _fmt_ns(path.wall_ns),
                bounding_label,
                _fmt_ns(path.path_ns),
                f"{share:.0%}",
                path.bounding_stage,
            ]
        )
    if path_rows:
        print(
            render_table(
                ["campaign", "wall", "critical path", "path time", "share", "bounded by"],
                path_rows,
                title="\ncritical paths",
            )
        )

    attribution = analyze.stage_attribution(artifacts.spans)
    total_ns = sum(attribution.values())
    stage_rows = [
        [stage, _fmt_ns(ns), f"{ns / total_ns:.1%}" if total_ns else "-"]
        for stage, ns in sorted(attribution.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    if stage_rows:
        print(
            render_table(
                ["stage", "self time", "share"], stage_rows, title="\nstage attribution"
            )
        )

    slow_rows = [
        [span.tags.get("domain", span.span_id), _fmt_ns(analyze.span_ns(span)), span.span_id]
        for span in analyze.slowest_spans(artifacts.spans, name="site", k=args.top)
    ]
    if slow_rows:
        print(
            render_table(
                ["domain", "duration", "span"], slow_rows,
                title=f"\nslowest sites (top {args.top})",
            )
        )

    error_rows = analyze.error_breakdown(artifacts.spans, artifacts.registry)
    if error_rows:
        print(
            render_table(
                ["error class", "spans", "observed", "injected", "unrecovered"],
                error_rows,
                title="\nerror classes",
            )
        )
    if artifacts.fault_ledger.has_events():
        print(
            render_table(
                FaultLedger.SUMMARY_HEADER,
                artifacts.fault_ledger.summary_rows(),
                title="\nfault ledger",
            )
        )

    if artifacts.profile:
        profile_rows = [
            [
                entry["stage"], entry["count"], entry["errors"],
                _fmt_ns(entry["total_ns"]), _fmt_ns(entry["mean_ns"]),
                _fmt_ns(entry["p50_ns"]), _fmt_ns(entry["p90_ns"]),
                _fmt_ns(entry["max_ns"]),
            ]
            for entry in artifacts.profile
        ]
        print(
            render_table(
                ["stage", "count", "errors", "total", "mean", "p50", "p90", "max"],
                profile_rows,
                title="\nstage profile",
            )
        )

    if args.chrome_trace:
        payload = analyze.chrome_trace(artifacts.spans, run_id=manifest.run_id)
        pathlib.Path(args.chrome_trace).write_text(json.dumps(payload, sort_keys=True))
        print(
            f"\nchrome trace: {len(payload['traceEvents'])} events -> "
            f"{args.chrome_trace} (open in chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.obs import analyze
    from repro.obs.ledger import TornRunError, load_run

    try:
        base = load_run(args.base)
        head = load_run(args.head)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1

    mismatches = [
        f"  {key}: {base_value!r} != {head_value!r}"
        for key, (base_value, head_value) in _identity_mismatches(
            base.manifest.identity(), head.manifest.identity()
        ).items()
    ]
    if mismatches and not args.force:
        print(
            f"error: runs are not comparable "
            f"({base.manifest.run_id} vs {head.manifest.run_id}):"
        )
        print("\n".join(mismatches))
        print("pass --force to diff anyway")
        return 2

    diff = analyze.diff_runs(
        base.registry, head.registry,
        base_id=base.manifest.run_id, head_id=head.manifest.run_id,
    )
    print(f"diff {diff.base_id} (base) vs {diff.head_id} (head)")
    if diff.counter_deltas:
        rows = [
            [name, base_n, head_n, head_n - base_n]
            for name, base_n, head_n in diff.counter_deltas
        ]
        print(render_table(["counter", "base", "head", "delta"], rows, title="\ncounter deltas"))
    else:
        print("(no counter deltas)")
    if diff.histogram_count_deltas:
        rows = [
            [name, base_n, head_n, head_n - base_n]
            for name, base_n, head_n in diff.histogram_count_deltas
        ]
        print(
            render_table(
                ["histogram", "base obs", "head obs", "delta"], rows,
                title="\nhistogram count deltas",
            )
        )
    if diff.stage_shifts:
        rows = [
            [
                shift.stage,
                f"{shift.base_count}->{shift.head_count}",
                f"{_fmt_ns(shift.base_mean_ns)}->{_fmt_ns(shift.head_mean_ns)}",
                f"{_fmt_ns(shift.base_p50_ns)}->{_fmt_ns(shift.head_p50_ns)}",
                f"{_fmt_ns(shift.base_p90_ns)}->{_fmt_ns(shift.head_p90_ns)}",
            ]
            for shift in diff.stage_shifts
        ]
        print(
            render_table(
                ["stage", "count", "mean", "p50", "p90"], rows, title="\nstage shifts"
            )
        )
    if diff.new_error_classes:
        print(f"\nnew error classes: {', '.join(diff.new_error_classes)}")
    if diff.vanished_error_classes:
        print(f"vanished error classes: {', '.join(diff.vanished_error_classes)}")

    violations = 0
    for expression in args.fail_on or []:
        try:
            threshold = analyze.parse_fail_on(expression)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        violated, detail = analyze.evaluate_threshold(threshold, base.registry, head.registry)
        print(detail)
        if violated:
            violations += 1
    if violations:
        print(f"{violations} threshold(s) violated")
        return 1
    return 0


def _cmd_obs_explain(args: argparse.Namespace) -> int:
    from repro.obs.evidence import render_verdict
    from repro.obs.ledger import TornRunError, load_run

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    if not artifacts.verdicts:
        print(
            f"error: {artifacts.path} has no verdicts.jsonl — re-run the "
            f"campaign with --run-dir under this version to record verdicts"
        )
        return 1
    matches = [v for v in artifacts.verdicts if v.subject == args.subject]
    if not matches:
        near = sorted(
            {v.subject for v in artifacts.verdicts if args.subject in v.subject}
        )[:5]
        hint = f" (close: {', '.join(near)})" if near else ""
        print(f"error: no verdict for {args.subject!r} in {artifacts.path}{hint}")
        return 1
    # one verdict per pipeline that saw the subject (zgrab0/zgrab1/chrome)
    from repro.graph.build import evidence_node_id

    for index, verdict in enumerate(matches):
        if index:
            print()
        print(render_verdict(verdict))
        node_ids = []
        for evidence in verdict.evidence:
            nid = evidence_node_id(evidence)
            if nid is not None and nid not in node_ids:
                node_ids.append(nid)
        for nid in node_ids:
            print(f"  graph node: {nid}")
    if matches[0].kind == "block":
        subject_node = f"block:{args.subject}"
    else:
        # domain nodes are dataset-qualified in the graph
        dataset = matches[0].dataset
        subject_node = f"domain:{dataset}/{args.subject}" if dataset else f"domain:{args.subject}"
    print(f"\nexplore: repro obs graph neighbors {args.run} {subject_node}")
    return 0


def _load_run_graph(args: argparse.Namespace):
    """``RunArtifacts`` with a graph, or ``None`` after printing the error."""
    from repro.obs.ledger import TornRunError, load_run

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return None
    if artifacts.graph is None:
        print(
            f"error: {artifacts.path} has no graph.jsonl — re-run the campaign "
            f"with --run-dir under this version to record the attribution graph"
        )
        return None
    return artifacts


def _resolve_graph_node(graph, raw: str):
    """A node id from user input; tolerates a bare domain/subject name.

    Domain, includer, and stratum keys are dataset-qualified
    (``domain:alexa/shop.com``); a bare ``shop.com`` resolves when it
    names exactly one node across datasets.
    """
    if raw in graph.nodes:
        return raw
    bare = raw.split(":", 1)[1] if ":" in raw else raw
    if ":" not in raw:
        for kind in ("domain", "includer", "family", "block"):
            candidate = f"{kind}:{raw}"
            if candidate in graph.nodes:
                return candidate
    qualified = sorted(
        nid
        for nid in graph.nodes
        if nid.split(":", 1)[-1].split("/", 1)[-1] == bare
        and (":" not in raw or nid.startswith(raw.split(":", 1)[0] + ":"))
    )
    if len(qualified) == 1:
        return qualified[0]
    if qualified:
        print(
            f"error: {raw!r} is ambiguous across datasets: "
            f"{', '.join(qualified)}"
        )
        return None
    near = sorted(nid for nid in graph.nodes if raw in nid)[:5]
    hint = f" (close: {', '.join(near)})" if near else ""
    print(f"error: no graph node {raw!r}{hint}")
    return None


def _attrs_text(attrs: dict) -> str:
    return " ".join(f"{name}={value}" for name, value in sorted(attrs.items()))


def _cmd_obs_graph_neighbors(args: argparse.Namespace) -> int:
    from repro.graph.query import neighbors

    artifacts = _load_run_graph(args)
    if artifacts is None:
        return 1
    graph = artifacts.graph
    nid = _resolve_graph_node(graph, args.node)
    if nid is None:
        return 1
    kind = graph.nodes[nid][0]
    print(f"{nid}  [{kind}]  {_attrs_text(graph.node_attrs(nid))}".rstrip())
    rows = neighbors(graph, nid)
    for edge_kind, direction, other, attrs in rows:
        line = f"  {direction} {edge_kind} {other}"
        if attrs:
            line += f"  ({_attrs_text(attrs)})"
        print(line)
    print(f"{len(rows)} edge(s)")
    return 0


def _cmd_obs_graph_path(args: argparse.Namespace) -> int:
    from repro.graph.model import NODE_KINDS
    from repro.graph.query import find_path

    artifacts = _load_run_graph(args)
    if artifacts is None:
        return 1
    graph = artifacts.graph
    start = _resolve_graph_node(graph, args.node)
    if start is None:
        return 1
    to = args.to
    if ":" not in to and to not in NODE_KINDS:
        print(f"error: --to wants a node id or one of: {', '.join(NODE_KINDS)}")
        return 2
    steps = find_path(graph, start, to)
    if steps is None:
        print(f"no path from {start} to {to!r}")
        return 1
    print(f"path: {start} to {steps[-1].node} ({len(steps) - 1} hop(s))")
    for step in steps:
        if step is not steps[0]:
            via = f"    {step.direction} {step.edge_kind}"
            if step.attrs:
                via += f"  ({_attrs_text(step.attrs)})"
            print(via)
        node_attrs = graph.node_attrs(step.node)
        line = f"  {step.node}"
        if node_attrs:
            line += f"  [{_attrs_text(node_attrs)}]"
        print(line)
    return 0


def _cmd_obs_graph_clusters(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.graph.query import clusters

    artifacts = _load_run_graph(args)
    if artifacts is None:
        return 1
    parts = clusters(artifacts.graph)
    if not parts:
        print("no campaign clusters (graph has no includes/attributed-to edges)")
        return 0
    rows = [
        [
            part.label,
            part.size,
            len(part.domains),
            part.miners,
            f"{part.miner_share:.1%}",
            part.wasm_hits,
            part.blocked,
            f"{part.detection_factor:.1f}x" if part.blocked else (
                "inf" if part.wasm_hits else "-"
            ),
        ]
        for part in parts[: args.top]
    ]
    print(
        render_table(
            ["cluster", "nodes", "domains", "miners", "miner share",
             "wasm", "blocked", "factor"],
            rows,
            title="campaign clusters",
        )
    )
    if len(parts) > args.top:
        print(f"({len(parts) - args.top} smaller cluster(s) not shown)")
    return 0


def _cmd_obs_graph_query(args: argparse.Namespace) -> int:
    from repro.obs import analyze
    from repro.graph.query import evaluate_graph_threshold, graph_metrics

    artifacts = _load_run_graph(args)
    if artifacts is None:
        return 1
    metrics = graph_metrics(artifacts.graph)
    for name in sorted(metrics):
        value = metrics[name]
        print(f"{name} = {value:g}")
    violations = 0
    for expression in args.fail_on or []:
        try:
            threshold = analyze.parse_fail_on(expression)
            violated, detail = evaluate_graph_threshold(threshold, metrics)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        print(detail)
        if violated:
            violations += 1
    if violations:
        print(f"{violations} threshold(s) violated")
        return 1
    return 0


def _cmd_obs_scorecard(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.obs import analyze, scorecard
    from repro.obs.ledger import TornRunError, load_run

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    try:
        card = scorecard.build_scorecard(artifacts)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    print(scorecard.render_scorecard_summary(card))
    print(
        render_table(
            scorecard.SCORECARD_HEADER,
            scorecard.scorecard_rows(card),
            title="\nper-detector scorecard",
        )
    )
    if card.clusters:
        print(
            render_table(
                scorecard.CLUSTER_HEADER,
                scorecard.cluster_score_rows(card),
                title="\nper-includer-cluster detection",
            )
        )
    violations = 0
    for expression in args.fail_on or []:
        try:
            threshold = analyze.parse_fail_on(expression)
            violated, detail = scorecard.evaluate_scorecard_threshold(threshold, card)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        print(detail)
        if violated:
            violations += 1
    if violations:
        print(f"{violations} threshold(s) violated")
        return 1
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.obs.ledger import TornRunError, load_run
    from repro.service.slo import evaluate_slo, parse_slo, slo_summary_rows

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    registry = artifacts.registry
    if "service.requests.offered" not in registry.counters:
        print(
            f"error: {artifacts.path} records no service.* metrics — "
            f"`obs slo` gates runs written by `loadgen --run-dir`"
        )
        return 1
    print(render_table(["metric", "value"], slo_summary_rows(registry), title="service SLOs"))
    violations = 0
    for expression in args.fail_on or []:
        try:
            threshold = parse_slo(expression)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        violated, detail = evaluate_slo(threshold, registry)
        print(detail)
        if violated:
            violations += 1
    if violations:
        print(f"{violations} SLO(s) violated")
        return 1
    return 0


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values) -> str:
    """Render a value series as unicode block characters (peak-scaled)."""
    peak = max(values, default=0)
    if peak <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    chars = []
    for value in values:
        if value <= 0:
            chars.append(_SPARK_BLOCKS[0])
        else:
            index = 1 + int(value / peak * (len(_SPARK_BLOCKS) - 2) + 0.5)
            chars.append(_SPARK_BLOCKS[min(index, len(_SPARK_BLOCKS) - 1)])
    return "".join(chars)


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    import fnmatch

    from repro.obs.ledger import TornRunError, load_run

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    series = artifacts.timeseries
    if series is None:
        print(
            f"error: {artifacts.path} has no timeseries.jsonl — re-run with "
            f"--timeseries-interval to record windowed telemetry"
        )
        return 1
    print(
        f"timeseries: {len(series.records)} ticks at {series.interval:g}s "
        f"({artifacts.manifest.run_id})"
    )
    counter_series = series.counter_series()
    names = sorted(counter_series)
    if args.metric:
        names = [name for name in names if fnmatch.fnmatch(name, args.metric)]
    if args.limit > 0 and len(names) > args.limit:
        names = sorted(
            names, key=lambda name: (-sum(counter_series[name]), name)
        )[: args.limit]
        names.sort()
    width = max((len(name) for name in names), default=0)
    for name in names:
        deltas = counter_series[name]
        total = sum(deltas)
        peak = max(deltas, default=0) / series.interval
        print(
            f"  {name:<{width}} {_sparkline(deltas)} "
            f"total={total} peak={peak:g}/s"
        )
    histogram_names = sorted({
        name for record in series.records for name in record.histograms
    })
    if args.metric:
        histogram_names = [
            name for name in histogram_names if fnmatch.fnmatch(name, args.metric)
        ]
    for name in histogram_names:
        p99s = [
            record.histograms[name].quantile(0.99)
            if name in record.histograms
            else 0.0
            for record in series.records
        ]
        print(
            f"  {name + '.p99':<{width}} {_sparkline(p99s)} "
            f"peak={max(p99s, default=0.0):g}s"
        )
    if series.alerts:
        print("\nalerts:")
        for event in series.alerts:
            mark = "!!" if event.kind == "fire" else "ok"
            print(f"  [{mark}] t={event.time:g}s {event.summary}")
    failures = []
    for rule in args.assert_fired or []:
        if not series.fired(rule):
            failures.append(f"expected alert {rule!r} to fire, but it never did")
    for rule in args.assert_not_fired or []:
        if series.fired(rule):
            failures.append(f"expected alert {rule!r} to stay silent, but it fired")
    for failure in failures:
        print(f"assertion failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _render_top(series, window_ticks: int, limit: int) -> str:
    from repro.obs.alerts import windowed_value, worst_tier

    records = series.records[-max(1, window_ticks):]
    span = max(len(records) * series.interval, series.interval)
    latest = series.records[-1]
    lines = [
        f"tick {latest.tick} t={latest.time:g}s "
        f"(window {span:g}s, {len(series.records)} ticks retained)"
    ]
    if any("service.requests.offered" in record.counters for record in records):
        lines.append(
            "service: "
            f"offered={windowed_value('service.requests.offered', records, series.interval):.1f}/s "
            f"shed={windowed_value('shed_rate', records, series.interval):.1%} "
            f"p50={windowed_value('p50', records, series.interval) * 1000:.0f}ms "
            f"p99={windowed_value('p99', records, series.interval) * 1000:.0f}ms "
            f"tier={worst_tier(records)}"
        )
    firing_state: dict = {}
    for event in series.alerts:
        firing_state[event.rule] = event.kind == "fire"
    active = sorted(rule for rule, firing in firing_state.items() if firing)
    lines.append("alerts firing: " + (", ".join(active) if active else "none"))
    totals: dict = {}
    for record in records:
        for name, delta in record.counters.items():
            totals[name] = totals.get(name, 0) + delta
    busiest = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    if limit > 0:
        busiest = busiest[:limit]
    for name, total in busiest:
        lines.append(f"  {total / span:8.1f}/s  {name}")
    return "\n".join(lines)


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.obs.timeseries import TimeSeriesSchemaError, read_timeseries_jsonl

    path = pathlib.Path(args.run)
    if path.is_dir():
        path = path / "timeseries.jsonl"
    passes = 0
    while True:
        if path.exists():
            try:
                series = read_timeseries_jsonl(path)
            except TimeSeriesSchemaError as exc:
                if args.watch <= 0:
                    print(f"error: {exc}")
                    return 1
                # a tail can catch the flusher mid-write; torn reads are
                # transient in watch mode, so keep polling
                print(f"(waiting) {exc}")
            else:
                if series.records:
                    print(_render_top(series, args.window, args.limit))
                elif args.watch <= 0:
                    print(f"error: {path} holds no tick records yet")
                    return 1
                else:
                    print(f"(waiting) {path} holds no tick records yet")
        elif args.watch <= 0:
            print(
                f"error: {path} does not exist — run with "
                f"--run-dir and --timeseries-interval"
            )
            return 1
        else:
            # watch mode tails a run that may not have flushed yet
            print(f"(waiting) {path} does not exist yet")
        # waiting passes count toward --iterations too: a bounded watch on
        # a run that never produces ticks must still terminate
        passes += 1
        if args.watch <= 0:
            break
        if args.iterations and passes >= args.iterations:
            break
        time_module.sleep(args.watch)
        print()
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.ledger import TornRunError, load_run
    from repro.obs.prom import registry_to_prom

    try:
        artifacts = load_run(args.run, allow_torn=args.allow_torn)
    except (TornRunError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    text = registry_to_prom(artifacts.registry)
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {len(text.splitlines())} exposition lines -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _identity_mismatches(base_identity: dict, head_identity: dict) -> dict:
    mismatches = {}
    for key in sorted(set(base_identity) | set(head_identity)):
        base_value = base_identity.get(key)
        head_value = head_identity.get(key)
        if base_value != head_value:
            mismatches[key] = (base_value, head_value)
    return mismatches


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.wasm.decoder import WasmDecodeError
    from repro.wasm.wat import disassemble

    status = 0
    for path in args.files:
        data = pathlib.Path(path).read_bytes()
        try:
            print(disassemble(data, max_functions=args.max_functions))
        except WasmDecodeError as exc:
            print(f";; {path}: {exc}")
            status = 1
    return status


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.wasm.builder import WasmCorpusBuilder, all_blueprints

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    builder = WasmCorpusBuilder(root_seed=args.seed)
    count = 0
    for blueprint in all_blueprints():
        if args.family and blueprint.family != args.family:
            continue
        name = f"{blueprint.family.replace('.', '_')}-v{blueprint.variant}.wasm"
        (out / name).write_bytes(builder.build(blueprint))
        count += 1
    print(f"wrote {count} modules to {out}")
    return 0


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the campaign trace (one span per line, JSONL) here",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage latency table after the run",
    )
    p.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="persist run artifacts (manifest/metrics/trace/profile/ledger) "
        "here for `repro-mining obs report/diff`",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SECS",
        help="emit a live progress line every SECS seconds (0 = off)",
    )
    p.add_argument(
        "--timeseries-interval",
        type=float,
        default=0.0,
        metavar="SECS",
        help="record windowed per-tick telemetry (counter rates, "
        "windowed latency quantiles) every SECS seconds into "
        "timeseries.jsonl for `obs timeline` / `obs top` (0 = off)",
    )


def _add_fastpath_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fastpath",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the batched detection hot paths (combined filter-list "
        "automaton, wasm decode/signature memo, single-pass HTML scan); "
        "--no-fastpath selects the rule-by-rule reference paths — "
        "verdicts are byte-identical either way",
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining",
        description="Reproduction toolkit for 'Digging into Browser-based Crypto Mining' (IMC 2018)",
    )
    parser.add_argument("--seed", type=int, default=2018, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fingerprint", help="fingerprint .wasm files")
    p.add_argument("files", nargs="+")
    p.set_defaults(func=_cmd_fingerprint)

    p = sub.add_parser("nocoin", help="match HTML files against the NoCoin list")
    p.add_argument("files", nargs="+")
    p.add_argument("--list", help="custom filter list file (Adblock syntax)")
    p.set_defaults(func=_cmd_nocoin)

    p = sub.add_parser("crawl", help="run a scaled crawl campaign")
    p.add_argument("--dataset", choices=("alexa", "com", "net", "org"), default="alexa")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument(
        "--population-size",
        type=int,
        default=0,
        metavar="N",
        help="stream an N-domain index-addressable population instead of "
        "materializing --scale (zgrab plane only; constant memory per shard)",
    )
    p.add_argument(
        "--strata",
        default="",
        help="rank strata for --population-size as name:hi_rank:signal_rate,... "
        "(empty hi_rank = tail); default: the dataset's calibrated "
        "top1k/top10k/top100k/top1m/tail buckets",
    )
    p.add_argument(
        "--sample-per-stratum",
        type=int,
        default=0,
        metavar="K",
        help="scan only K uniformly-sampled ranks per stratum instead of the "
        "full population (0 = full scan); prevalence tables extrapolate",
    )
    p.add_argument(
        "--zgrab-only",
        action="store_true",
        help="with --population-size on a Chrome-crawl dataset, explicitly "
        "run only the zgrab plane (otherwise that combination is an error)",
    )
    p.add_argument("--shards", type=_positive_int, default=1, help="split the population into N shards")
    p.add_argument("--workers", type=_positive_int, default=1, help="worker pool size for shard execution")
    p.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="shard execution mode (process = fork-based pool, Linux)",
    )
    p.add_argument(
        "--fault-profile",
        default="",
        help="chaos profile: none | mild | heavy | kind=rate,... (e.g. reset=0.2)",
    )
    p.add_argument(
        "--resume-from",
        default=None,
        metavar="DIR",
        help="checkpoint-journal directory; a rerun resumes completed sites from it "
        "(journals are unpickled on load — use only directories this tool wrote)",
    )
    p.add_argument(
        "--signature-db",
        default=None,
        metavar="PATH",
        help="use this signature catalogue (SignatureDatabase JSON) for the "
        "Chrome pass instead of building the reference database",
    )
    _add_obs_flags(p)
    _add_fastpath_flag(p)
    p.set_defaults(func=_cmd_crawl)

    p = sub.add_parser("serve", help="one-shot verdict-server demo")
    p.add_argument(
        "domains",
        nargs="*",
        metavar="DOMAIN",
        help="domains to ask about (default: a seeded request sample)",
    )
    p.add_argument("--dataset", choices=("alexa", "com", "net", "org"), default="alexa")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument(
        "--requests",
        type=_positive_int,
        default=12,
        metavar="N",
        help="seeded requests to serve when no domains are given",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="SECS",
        help="serve a seeded open-loop arrival schedule for SECS simulated "
        "seconds instead of the N-request demo (enables --timeseries-interval)",
    )
    p.add_argument(
        "--rate",
        type=float,
        default=40.0,
        help="offered load for --duration mode, requests/second",
    )
    p.add_argument(
        "--timeseries-interval",
        type=float,
        default=0.0,
        metavar="SECS",
        help="with --duration: record windowed telemetry every SECS simulated "
        "seconds and evaluate the default burn-rate alert rules",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SECS",
        help="with --duration: live progress + service health (queue depth, "
        "shed rate, degradation tier) every SECS simulated seconds",
    )
    p.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="persist run artifacts (metrics, verdicts, timeseries.jsonl) here",
    )
    p.add_argument(
        "--fault-profile",
        default="",
        help="chaos profile: none | mild | heavy | kind=rate,...",
    )
    _add_fastpath_flag(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen", help="seeded open-loop load run against the verdict server"
    )
    p.add_argument("--dataset", choices=("alexa", "com", "net", "org"), default="alexa")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument(
        "--rate", type=float, default=40.0,
        help="aggregate offered load, requests/second split over tenants",
    )
    p.add_argument(
        "--duration", type=float, default=30.0, help="simulated seconds of arrivals"
    )
    p.add_argument("--tenants", type=_positive_int, default=4)
    p.add_argument(
        "--fault-profile",
        default="",
        help="chaos profile: none | mild | heavy | kind=rate,...",
    )
    p.add_argument(
        "--reload-at",
        type=float,
        action="append",
        default=[],
        metavar="T",
        help="hot-swap a refreshed detection bundle at simulated time T (repeatable)",
    )
    p.add_argument(
        "--bad-reload-at",
        type=float,
        action="append",
        default=[],
        metavar="T",
        help="offer an invalid bundle at simulated time T — rollback demo (repeatable)",
    )
    p.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="persist run artifacts here for `obs slo` / `obs explain`; with "
        "--timeseries-interval the recorder rewrites timeseries.jsonl "
        "atomically every tick so `obs top --watch` can follow the run live",
    )
    p.add_argument(
        "--timeseries-interval",
        type=float,
        default=0.0,
        metavar="SECS",
        help="record windowed telemetry every SECS simulated seconds and "
        "evaluate the default burn-rate alert rules (0 = off)",
    )
    p.add_argument(
        "--cooldown",
        type=float,
        default=0.0,
        metavar="SECS",
        help="keep observing SECS simulated seconds after the last arrival "
        "drains, so recovered burn-rate alerts resolve on tape",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SECS",
        help="live progress + service health (queue depth, shed rate, "
        "degradation tier) every SECS simulated seconds",
    )
    _add_fastpath_flag(p)
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("shortlinks", help="run the cnhv.co study")
    p.add_argument("--scale", type=float, default=0.002)
    p.add_argument("--sample", type=int, default=50)
    p.add_argument("--resolve", action="store_true", help="also resolve destinations")
    p.set_defaults(func=_cmd_shortlinks)

    p = sub.add_parser("attribute", help="simulate the network and attribute blocks")
    p.add_argument("--days", type=int, default=7)
    p.set_defaults(func=_cmd_attribute)

    p = sub.add_parser("reproduce", help="run every experiment, emit a markdown report")
    p.add_argument("--out", help="write the report here instead of stdout")
    p.add_argument("--crawl-scale", type=float, default=0.25)
    p.add_argument(
        "--population-size",
        type=int,
        default=0,
        metavar="N",
        help="stream N-domain populations for the crawls (see `crawl --population-size`)",
    )
    p.add_argument("--strata", default="", help="rank strata (see `crawl --strata`)")
    p.add_argument(
        "--sample-per-stratum",
        type=int,
        default=0,
        metavar="K",
        help="sampled ranks per stratum (see `crawl --sample-per-stratum`)",
    )
    p.add_argument("--shortlink-scale", type=float, default=0.004)
    p.add_argument("--days", type=int, default=28)
    p.add_argument("--shards", type=_positive_int, default=1, help="crawl shards (see `crawl --shards`)")
    p.add_argument("--workers", type=_positive_int, default=1, help="crawl worker pool size")
    p.add_argument("--executor", choices=("serial", "thread", "process"), default="thread")
    p.add_argument(
        "--fault-profile",
        default="",
        help="chaos profile for the crawls: none | mild | heavy | kind=rate,...",
    )
    p.add_argument(
        "--resume-from",
        default=None,
        metavar="DIR",
        help="crawl checkpoint-journal directory (see `crawl --resume-from`)",
    )
    _add_obs_flags(p)
    _add_fastpath_flag(p)
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("obs", help="analyze persisted run directories")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    p_report = obs_sub.add_parser("report", help="critical paths, slowest sites, errors")
    p_report.add_argument("run", metavar="RUN", help="run directory written by --run-dir")
    p_report.add_argument("--top", type=_positive_int, default=10, help="top-K slowest sites")
    p_report.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="export the span tree as Chrome trace_event JSON (chrome://tracing, Perfetto)",
    )
    p_report.add_argument(
        "--allow-torn",
        action="store_true",
        help="analyze a run directory without a COMPLETE marker",
    )
    p_report.set_defaults(func=_cmd_obs_report)

    p_diff = obs_sub.add_parser("diff", help="compare two runs; optional CI perf gates")
    p_diff.add_argument("base", metavar="BASE", help="baseline run directory")
    p_diff.add_argument("head", metavar="HEAD", help="candidate run directory")
    p_diff.add_argument(
        "--force",
        action="store_true",
        help="diff even when the run identities (seed, dataset, scale...) differ",
    )
    p_diff.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="EXPR",
        help="exit non-zero when EXPR holds on head, e.g. 'stage.fetch.p90>1.2x' "
        "(trailing x = head/base ratio) or 'fault.observed.timeout>10' (absolute); "
        "repeatable",
    )
    p_diff.set_defaults(func=_cmd_obs_diff)

    p_explain = obs_sub.add_parser(
        "explain", help="show the evidence chain behind one subject's verdicts"
    )
    p_explain.add_argument("run", metavar="RUN", help="run directory written by --run-dir")
    p_explain.add_argument(
        "subject",
        metavar="SUBJECT",
        help="crawled domain (or block-<height> for pool attributions)",
    )
    p_explain.add_argument(
        "--allow-torn",
        action="store_true",
        help="read verdicts from a run directory without a COMPLETE marker",
    )
    p_explain.set_defaults(func=_cmd_obs_explain)

    p_score = obs_sub.add_parser(
        "scorecard",
        help="per-detector precision/recall vs the synthetic ground truth",
    )
    p_score.add_argument("run", metavar="RUN", help="run directory written by --run-dir")
    p_score.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="EXPR",
        help="exit non-zero when EXPR holds, e.g. 'detector.wasm.recall<0.95' "
        "or 'detection_factor<2'; absolute values only; repeatable",
    )
    p_score.add_argument(
        "--allow-torn",
        action="store_true",
        help="score a run directory without a COMPLETE marker",
    )
    p_score.set_defaults(func=_cmd_obs_scorecard)

    p_slo = obs_sub.add_parser(
        "slo", help="service SLO gates over a `loadgen --run-dir` run"
    )
    p_slo.add_argument("run", metavar="RUN", help="run directory written by `loadgen --run-dir`")
    p_slo.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="EXPR",
        help="exit non-zero when EXPR holds, e.g. 'p99>0.5' (latency seconds), "
        "'shed_rate>0.25', 'service.reload.mixed_bundle>0'; absolute values "
        "only; repeatable",
    )
    p_slo.add_argument(
        "--allow-torn",
        action="store_true",
        help="gate a run directory without a COMPLETE marker",
    )
    p_slo.set_defaults(func=_cmd_obs_slo)

    p_timeline = obs_sub.add_parser(
        "timeline",
        help="per-metric sparklines over the run's timeseries, with "
        "burn-rate alert annotations",
    )
    p_timeline.add_argument(
        "run", metavar="RUN", help="run directory written with --timeseries-interval"
    )
    p_timeline.add_argument(
        "--metric",
        default="",
        metavar="GLOB",
        help="only metrics matching this glob (e.g. 'service.rejected.*')",
    )
    p_timeline.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="show only the N busiest counter series (0 = all)",
    )
    p_timeline.add_argument(
        "--assert-fired",
        action="append",
        default=[],
        metavar="RULE",
        help="exit non-zero unless alert RULE fired during the run "
        "(repeatable; CI gate)",
    )
    p_timeline.add_argument(
        "--assert-not-fired",
        action="append",
        default=[],
        metavar="RULE",
        help="exit non-zero if alert RULE fired during the run (repeatable)",
    )
    p_timeline.add_argument(
        "--allow-torn",
        action="store_true",
        help="read a run directory without a COMPLETE marker",
    )
    p_timeline.set_defaults(func=_cmd_obs_timeline)

    p_top = obs_sub.add_parser(
        "top",
        help="live windowed service/campaign view off a (possibly still "
        "in-flight) run directory",
    )
    p_top.add_argument(
        "run",
        metavar="RUN",
        help="run directory (or a timeseries.jsonl path); reads the "
        "tick-flushed artifact directly, no COMPLETE marker needed",
    )
    p_top.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECS",
        help="re-read and re-render every SECS wall seconds (0 = render once)",
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="with --watch: stop after N refreshes, rendered or waiting "
        "(0 = until interrupted)",
    )
    p_top.add_argument(
        "--window",
        type=int,
        default=10,
        metavar="K",
        help="trailing ticks per windowed stat",
    )
    p_top.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="busiest counters to show (0 = all)",
    )
    p_top.set_defaults(func=_cmd_obs_top)

    p_export = obs_sub.add_parser(
        "export", help="export run metrics for external dashboard stacks"
    )
    p_export.add_argument("run", metavar="RUN", help="run directory written by --run-dir")
    p_export.add_argument(
        "--format",
        choices=("prom",),
        default="prom",
        help="output format (prom = Prometheus text exposition)",
    )
    p_export.add_argument(
        "--out", default=None, metavar="PATH", help="write here instead of stdout"
    )
    p_export.add_argument(
        "--allow-torn",
        action="store_true",
        help="export a run directory without a COMPLETE marker",
    )
    p_export.set_defaults(func=_cmd_obs_export)

    p_graph = obs_sub.add_parser(
        "graph", help="walk the campaign attribution graph (graph.jsonl)"
    )
    graph_sub = p_graph.add_subparsers(dest="graph_command", required=True)

    def graph_parser(name: str, help_text: str):
        sub_p = graph_sub.add_parser(name, help=help_text)
        sub_p.add_argument(
            "run", metavar="RUN", help="run directory written by --run-dir"
        )
        sub_p.add_argument(
            "--allow-torn",
            action="store_true",
            help="read a run directory without a COMPLETE marker",
        )
        return sub_p

    pg = graph_parser("neighbors", "one node's edges, both directions")
    pg.add_argument(
        "node",
        metavar="NODE",
        help="node id like domain:shop.com (a bare name resolves if unambiguous)",
    )
    pg.set_defaults(func=_cmd_obs_graph_neighbors)

    pg = graph_parser(
        "path", "shortest evidence path, e.g. which includer seeded this miner"
    )
    pg.add_argument("node", metavar="NODE", help="start node id (or bare domain)")
    pg.add_argument(
        "--to",
        default="includer",
        metavar="TARGET",
        help="goal node id, or a node kind (default: includer)",
    )
    pg.set_defaults(func=_cmd_obs_graph_path)

    pg = graph_parser(
        "clusters", "campaign components over includes/attributed-to edges"
    )
    pg.add_argument(
        "--top",
        type=_positive_int,
        default=20,
        metavar="N",
        help="largest clusters to show (default 20)",
    )
    pg.set_defaults(func=_cmd_obs_graph_clusters)

    pg = graph_parser("query", "print graph metrics; gate them with --fail-on")
    pg.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="EXPR",
        help="exit non-zero when EXPR holds, e.g. 'clusters.max_miner_share>0.5' "
        "or 'edges.includes<1'; absolute values only; repeatable",
    )
    pg.set_defaults(func=_cmd_obs_graph_query)

    p = sub.add_parser("disasm", help="disassemble .wasm files to WAT-style text")
    p.add_argument("files", nargs="+")
    p.add_argument("--max-functions", type=int, default=None)
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("corpus", help="dump the synthetic wasm corpus")
    p.add_argument("--out", default="wasm-corpus")
    p.add_argument("--family", help="only this family")
    p.set_defaults(func=_cmd_corpus)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
