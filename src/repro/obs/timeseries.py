"""Windowed time-series telemetry over the metrics registry.

The obs stack so far is strictly post-hoc: a run finishes, then the
toolkit reads one cumulative :class:`~repro.obs.metrics.MetricsRegistry`.
This module adds the temporal axis a long-running campaign or verdict
service needs. A :class:`TimeSeriesRecorder` is *fed* time (it never
reads a clock itself — the caller polls it with whatever clock drives the
workload: the sim clock for the service, the obs clock for campaigns)
and, on every completed tick, snapshots the registry *delta* since the
previous tick:

- **counters** → per-tick increments (rates = delta / interval),
- **gauges**  → point-in-time high-water values,
- **histograms** → windowed bucket deltas (:class:`HistogramWindow`),
  so per-window p50/p90/p99 are answerable without the cumulative tail.

Ticks land in a bounded ring buffer (``capacity`` most recent ticks) and
persist as a schema-versioned ``timeseries.jsonl`` run-dir artifact that
obeys the registry merge law: merging two series merges their ticks
pointwise (counters add, gauges max, histogram buckets add), exactly
associative and commutative with the empty series as identity.

Metric names carry *service dimensions* inline
(``service.tenant.tenant-0.offered``, ``service.tier.static-only``,
``crawl.zgrab0.stratum.top1k.hits``); :func:`parse_dimensions` lifts the
segment after a known dimension token into a label so the timeline view
and the Prometheus exporter can group by tenant / degradation tier /
bundle version / stratum.

Determinism: every tick boundary is a pure function of ``origin``,
``interval``, and the polled times, so two same-seed service runs write
byte-identical ``timeseries.jsonl`` (sim time is seeded), and campaigns
do the same under a :class:`~repro.obs.clock.TickClock`.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.alerts import AlertEvent, AlertRuleSet
from repro.obs.clock import get_clock

#: Version of the ``timeseries.jsonl`` line schema.
TIMESERIES_SCHEMA_VERSION = 1

#: Metric-name segments that introduce a one-segment dimension value.
DIMENSION_TOKENS = ("tenant", "tier", "bundle", "stratum")


class TimeSeriesSchemaError(ValueError):
    """A timeseries file declares a schema this reader does not understand."""


def parse_dimensions(name: str):
    """Split a metric name into (base name, dimension labels).

    ``service.tenant.tenant-0.offered`` → (``service.tenant.offered``,
    ``{"tenant": "tenant-0"}``). Unknown segments pass through verbatim.
    """
    parts = name.split(".")
    base = []
    labels = {}
    index = 0
    while index < len(parts):
        part = parts[index]
        if part in DIMENSION_TOKENS and index + 1 < len(parts):
            labels[part] = parts[index + 1]
            base.append(part)
            index += 2
        else:
            base.append(part)
            index += 1
    return ".".join(base), labels


@dataclass
class HistogramWindow:
    """One tick's histogram delta: bucket counts over fixed bounds.

    Deliberately *not* a :class:`~repro.obs.metrics.Histogram`: min/max
    are cumulative extremes and do not difference, so a window only
    carries what subtracts cleanly — bucket counts and total time. Its
    quantiles are bucket-resolution (the covering bucket's upper bound;
    the overflow bucket reports the top bound).
    """

    bounds: tuple
    counts: list
    count: int = 0
    total_ns: int = 0

    def __post_init__(self) -> None:
        self.bounds = tuple(self.bounds)
        self.counts = list(self.counts)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("counts must have len(bounds) + 1 entries")

    def copy(self) -> "HistogramWindow":
        return HistogramWindow(
            bounds=self.bounds,
            counts=list(self.counts),
            count=self.count,
            total_ns=self.total_ns,
        )

    def merge(self, other: "HistogramWindow") -> "HistogramWindow":
        if self.bounds != other.bounds:
            raise ValueError(f"bucket bounds differ: {self.bounds} vs {other.bounds}")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total_ns += other.total_ns
        return self

    @property
    def mean_seconds(self) -> float:
        return (self.total_ns / self.count) / 1e9 if self.count else 0.0

    def quantile(self, q: float) -> float:
        if not self.count:
            return 0.0
        target = max(1.0, min(q, 1.0) * self.count)
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                break
        return self.bounds[-1] if self.bounds else 0.0

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total_ns": self.total_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HistogramWindow":
        return cls(
            bounds=tuple(payload["bounds"]),
            counts=list(payload["counts"]),
            count=payload["count"],
            total_ns=payload["total_ns"],
        )


@dataclass
class TickRecord:
    """One completed tick: the registry delta over ``[start, end)``.

    ``time`` is the *end* of the window in seconds since the recorder's
    origin — relative, so the artifact is byte-stable no matter what
    absolute clock anchored the run.
    """

    tick: int
    time: float
    counters: dict = field(default_factory=dict)    # name → int delta (non-zero)
    gauges: dict = field(default_factory=dict)      # name → float high-water
    histograms: dict = field(default_factory=dict)  # name → HistogramWindow

    def merge(self, other: "TickRecord") -> "TickRecord":
        if self.tick != other.tick:
            raise ValueError(f"tick mismatch: {self.tick} vs {other.tick}")
        for name, delta in other.counters.items():
            merged = self.counters.get(name, 0) + delta
            if merged:
                self.counters[name] = merged
            else:
                self.counters.pop(name, None)
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = value
        for name, window in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = window.copy()
            else:
                mine.merge(window)
        return self

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "time": self.time,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TickRecord":
        return cls(
            tick=payload["tick"],
            time=payload["time"],
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms={
                name: HistogramWindow.from_dict(window)
                for name, window in payload.get("histograms", {}).items()
            },
        )


def _alert_sort_key(event: AlertEvent):
    return (event.tick, event.rule, event.kind)


@dataclass
class TimeSeries:
    """A sequence of tick records plus the alert events they produced."""

    interval: float
    records: list = field(default_factory=list)  # TickRecords, ascending tick
    alerts: list = field(default_factory=list)   # AlertEvents

    # -- the merge law (mirrors MetricsRegistry.merge) --------------------------------

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Pointwise tick merge; alerts union (deduplicated)."""
        if other.records or other.alerts:
            if self.interval != other.interval:
                raise ValueError(
                    f"tick intervals differ: {self.interval} vs {other.interval}"
                )
        by_tick = {record.tick: record for record in self.records}
        for record in other.records:
            mine = by_tick.get(record.tick)
            if mine is None:
                copy = TickRecord.from_dict(record.to_dict())
                by_tick[record.tick] = copy
            else:
                mine.merge(record)
        self.records = [by_tick[tick] for tick in sorted(by_tick)]
        seen = {json.dumps(e.to_dict(), sort_keys=True) for e in self.alerts}
        for event in other.alerts:
            key = json.dumps(event.to_dict(), sort_keys=True)
            if key not in seen:
                seen.add(key)
                self.alerts.append(event)
        self.alerts.sort(key=_alert_sort_key)
        return self

    # -- views ------------------------------------------------------------------------

    def counter_series(self) -> dict:
        """name → per-tick delta list (zero-filled), over all retained ticks."""
        names = sorted({name for r in self.records for name in r.counters})
        return {
            name: [record.counters.get(name, 0) for record in self.records]
            for name in names
        }

    def fired(self, rule: Optional[str] = None) -> list:
        return [
            event
            for event in self.alerts
            if event.kind == "fire" and (rule is None or event.rule == rule)
        ]

    def resolved(self, rule: Optional[str] = None) -> list:
        return [
            event
            for event in self.alerts
            if event.kind == "resolve" and (rule is None or event.rule == rule)
        ]

    # -- serialization ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        header = json.dumps(
            {"schema_version": TIMESERIES_SCHEMA_VERSION, "interval": self.interval},
            sort_keys=True,
            separators=(",", ":"),
        )
        lines = [header]
        for record in sorted(self.records, key=lambda r: r.tick):
            lines.append(
                json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
            )
        for event in sorted(self.alerts, key=_alert_sort_key):
            lines.append(
                json.dumps(
                    {"alert": event.to_dict()}, sort_keys=True, separators=(",", ":")
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TimeSeries":
        lines = [line for line in text.splitlines() if line.strip()]
        interval = None
        records = []
        alerts = []
        for index, line in enumerate(lines):
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise TimeSeriesSchemaError(
                    f"malformed timeseries line {index + 1}: {line!r}"
                ) from exc
            if not isinstance(payload, dict):
                raise TimeSeriesSchemaError(
                    f"malformed timeseries line {index + 1}: {line!r}"
                )
            if index == 0 and "schema_version" in payload and "tick" not in payload:
                version = payload["schema_version"]
                if not isinstance(version, int):
                    raise TimeSeriesSchemaError(
                        f"malformed timeseries schema header: {line!r}"
                    )
                if version > TIMESERIES_SCHEMA_VERSION:
                    raise TimeSeriesSchemaError(
                        f"timeseries file uses schema v{version}, but this reader "
                        f"only understands up to v{TIMESERIES_SCHEMA_VERSION} — "
                        f"upgrade repro"
                    )
                interval = payload.get("interval")
                continue
            if "alert" in payload:
                alerts.append(AlertEvent.from_dict(payload["alert"]))
            elif "tick" in payload:
                records.append(TickRecord.from_dict(payload))
            else:
                raise TimeSeriesSchemaError(
                    f"unrecognized timeseries line {index + 1}: {line!r}"
                )
        if interval is None:
            # legacy headerless file: recover the tick width from the first
            # record's (end time / tick count) ratio, defaulting to 1s
            interval = 1.0
            for record in records:
                if record.time > 0:
                    interval = record.time / (record.tick + 1)
                    break
        records.sort(key=lambda r: r.tick)
        alerts.sort(key=_alert_sort_key)
        return cls(interval=float(interval), records=records, alerts=alerts)


def write_timeseries_jsonl(path, series: TimeSeries) -> int:
    """Atomically persist a series; returns the number of tick records."""
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(series.to_jsonl())
    os.replace(tmp, path)
    return len(series.records)


def read_timeseries_jsonl(path) -> TimeSeries:
    return TimeSeries.from_jsonl(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------------
# the recorder


class TimeSeriesRecorder:
    """Snapshots registry deltas on a fixed tick, into a bounded ring.

    Clock-agnostic by construction: the recorder holds no clock, the
    caller feeds it time via :meth:`poll`. Tick ``k`` covers
    ``[origin + k*interval, origin + (k+1)*interval)`` and is emitted the
    first time ``poll(now)`` sees ``now`` at or past the window end —
    including empty ticks, so retained tick indices are always
    contiguous and window arithmetic over the ring is exact.

    ``capacity`` bounds both rings (ticks and alert events). If a poll
    gap exceeds the capacity, the skipped ticks are dropped *before*
    materialization (they would be evicted immediately) and the
    accumulated delta lands in the first retained tick.
    """

    def __init__(
        self,
        registry,
        interval: float,
        rules: Optional[AlertRuleSet] = None,
        capacity: int = 1024,
        origin: float = 0.0,
        flush_path=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"tick interval must be positive, got {interval!r}")
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity!r}")
        self.registry = registry
        self.interval = float(interval)
        self.rules = rules
        self.capacity = int(capacity)
        self.origin = float(origin)
        self.flush_path = pathlib.Path(flush_path) if flush_path is not None else None
        if rules is not None:
            needed = rules.max_window_ticks(self.interval)
            if needed > self.capacity:
                raise ValueError(
                    f"ring capacity {self.capacity} cannot cover the longest "
                    f"alert window ({needed} ticks at interval {self.interval}s)"
                )
        self._records: deque = deque(maxlen=self.capacity)
        self._alerts: deque = deque(maxlen=self.capacity)
        self._firing: dict = {}
        self._emitted = 0
        self._prev_counters: dict = {}
        self._prev_hist: dict = {}

    # -- feeding time -----------------------------------------------------------------

    def poll(self, now: float) -> int:
        """Emit every tick whose window ended at or before ``now``."""
        complete = int(math.floor((now - self.origin) / self.interval))
        if complete <= self._emitted:
            return 0
        pending = complete - self._emitted
        if pending > self.capacity:
            # fast-forward over ticks that would be evicted unseen; the
            # delta since the last snapshot lands in the first kept tick
            self._emitted = complete - self.capacity
        emitted = 0
        while self._emitted < complete:
            self._snapshot()
            emitted += 1
        if emitted and self.flush_path is not None:
            self.flush()
        return emitted

    def finish(self, now: float) -> None:
        """Final poll + flush (for end-of-run / cooldown observation)."""
        self.poll(now)
        if self.flush_path is not None:
            self.flush()

    def flush(self) -> None:
        write_timeseries_jsonl(self.flush_path, self.timeseries())

    # -- snapshots --------------------------------------------------------------------

    def _snapshot(self) -> None:
        tick = self._emitted
        self._emitted += 1
        counters = {}
        for name, value in self.registry.counters.items():
            delta = value - self._prev_counters.get(name, 0)
            if delta:
                counters[name] = delta
        self._prev_counters = dict(self.registry.counters)
        histograms = {}
        for name, histogram in self.registry.histograms.items():
            prev_counts, prev_total = self._prev_hist.get(
                name, ((0,) * len(histogram.counts), 0)
            )
            delta_counts = [c - p for c, p in zip(histogram.counts, prev_counts)]
            count = sum(delta_counts)
            if count:
                histograms[name] = HistogramWindow(
                    bounds=histogram.bounds,
                    counts=delta_counts,
                    count=count,
                    total_ns=histogram.total_ns - prev_total,
                )
            self._prev_hist[name] = (tuple(histogram.counts), histogram.total_ns)
        record = TickRecord(
            tick=tick,
            time=round((tick + 1) * self.interval, 9),
            counters=counters,
            gauges=dict(self.registry.gauges),
            histograms=histograms,
        )
        self._records.append(record)
        if self.rules is not None:
            events = self.rules.evaluate(
                list(self._records), self.interval, self._firing
            )
            self._alerts.extend(events)

    # -- views ------------------------------------------------------------------------

    @property
    def records(self) -> list:
        return list(self._records)

    @property
    def alerts(self) -> list:
        return list(self._alerts)

    def timeseries(self) -> TimeSeries:
        return TimeSeries(
            interval=self.interval, records=self.records, alerts=self.alerts
        )


class RecorderProgress:
    """Adapter that rides the campaign progress hooks to poll a recorder.

    Campaigns already thread an optional ``progress`` object through the
    executors (per-site in serial/thread mode, per-shard in process
    mode). Wrapping the real :class:`~repro.obs.heartbeat.ProgressReporter`
    (or ``None``) keeps that plumbing unchanged while giving the recorder
    a poll on every completion, clocked by the obs clock.
    """

    def __init__(
        self,
        recorder: TimeSeriesRecorder,
        inner=None,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        self.recorder = recorder
        self.inner = inner
        self._now = now if now is not None else (lambda: get_clock().now())

    def begin(self, total: int, label=None) -> None:
        if self.inner is not None:
            self.inner.begin(total, label)

    def advance(self, n: int = 1, **counts) -> None:
        if self.inner is not None:
            self.inner.advance(n, **counts)
        self.recorder.poll(self._now())

    def finish(self) -> None:
        if self.inner is not None:
            self.inner.finish()
        self.recorder.poll(self._now())
