"""Trace and run analysis: critical paths, Chrome traces, cross-run diffs.

The read side of the run ledger. Everything here is exact integer
arithmetic over the persisted artifacts:

- **Critical path** — span durations convert to integer nanoseconds via
  their absolute stamps, so a parent's *self time* (duration minus the
  sum of its children) telescopes: the per-stage attribution of any
  subtree sums to that subtree root's duration, to the nanosecond. The
  campaign's critical path is its slowest ``shard`` child — the one that
  bounded wall time.
- **Chrome trace export** — spans re-emitted as ``trace_event`` complete
  events (``ph: "X"``), one virtual thread per tracer prefix, so
  ``chrome://tracing`` / Perfetto render a sharded campaign as parallel
  lanes.
- **Diff** — two runs compared counter-by-counter and stage-by-stage
  (mean/p50/p90 shift), with ``--fail-on`` threshold expressions
  (``stage.fetch.p90>1.2x``) turning the diff into a CI regression gate.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

_NS = 1_000_000_000


def _stamp_ns(stamp: float) -> int:
    return round(stamp * _NS)


def span_ns(span: Span) -> int:
    """Span duration in integer nanoseconds (never negative)."""
    return max(0, _stamp_ns(span.end) - _stamp_ns(span.start))


# ---------------------------------------------------------------------------
# span tree + critical path


def build_tree(spans: Iterable[Span]):
    """(roots, children-by-parent-id), both in input order.

    A span whose parent is absent from the list counts as a root — a
    partial trace still analyzes.
    """
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}
    roots = []
    children: dict[str, list] = {}
    for span in spans:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children


def subtree_stage_ns(root: Span, children: dict) -> dict:
    """Exact self-time attribution by stage name within one subtree.

    Each span contributes ``duration - sum(child durations)`` to the
    bucket of its own name, so the values sum to ``span_ns(root)``
    exactly. Overlapping children (thread-mode shards under a campaign)
    can push a bucket negative; the telescoping identity still holds.
    """
    totals: dict[str, int] = {}
    stack = [root]
    # visit each span object at most once: a trace with duplicated span
    # ids (hand-merged files, pre-fix multi-dataset runs) would otherwise
    # re-expand shared subtrees combinatorially
    seen: set[int] = set()
    while stack:
        span = stack.pop()
        if id(span) in seen:
            continue
        seen.add(id(span))
        kids = children.get(span.span_id, [])
        self_ns = span_ns(span) - sum(span_ns(kid) for kid in kids)
        totals[span.name] = totals.get(span.name, 0) + self_ns
        stack.extend(kids)
    return totals


@dataclass
class CriticalPath:
    """Which subtree bounded one root span's wall time, and why."""

    root: Span
    bounding: Optional[Span]          # slowest shard child; None if unsharded
    stage_ns: dict = field(default_factory=dict)

    @property
    def wall_ns(self) -> int:
        return span_ns(self.root)

    @property
    def path_ns(self) -> int:
        return span_ns(self.bounding) if self.bounding is not None else self.wall_ns

    @property
    def bounding_stage(self) -> str:
        if not self.stage_ns:
            return ""
        return sorted(self.stage_ns.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]


def critical_paths(spans: Iterable[Span]) -> list:
    """One :class:`CriticalPath` per root span, in trace order.

    For a sharded campaign the analysis descends into the slowest
    ``shard`` child (wall time is its duration plus scatter/gather
    overhead); for an unsharded root it attributes the root itself.
    """
    roots, children = build_tree(spans)
    paths = []
    for root in roots:
        shard_kids = [kid for kid in children.get(root.span_id, []) if kid.name == "shard"]
        bounding = (
            max(shard_kids, key=lambda span: (span_ns(span), span.span_id))
            if shard_kids
            else None
        )
        target = bounding if bounding is not None else root
        paths.append(
            CriticalPath(root=root, bounding=bounding, stage_ns=subtree_stage_ns(target, children))
        )
    return paths


def stage_attribution(spans: Iterable[Span]) -> dict:
    """Self-time per stage across the whole trace (sums to Σ root durations)."""
    roots, children = build_tree(spans)
    totals: dict[str, int] = {}
    for root in roots:
        for name, ns in subtree_stage_ns(root, children).items():
            totals[name] = totals.get(name, 0) + ns
    return totals


def slowest_spans(spans: Iterable[Span], name: str = "site", k: int = 10) -> list:
    """Top-``k`` spans of one stage by duration (ties broken by id)."""
    picked = [span for span in spans if span.name == name]
    picked.sort(key=lambda span: (-span_ns(span), span.span_id))
    return picked[:k]


def error_breakdown(spans: Iterable[Span], registry: MetricsRegistry) -> list:
    """Error classes joined across spans and ``fault.*`` counters.

    Rows: ``[error_class, tagged_spans, fault.observed, fault.injected,
    fault.unrecovered]`` sorted by span count desc then name — the view
    that answers "what actually failed, and was it injected or organic".
    """
    span_counts: dict[str, int] = {}
    for span in spans:
        cls = span.tags.get("error_class") or span.tags.get("error")
        if cls:
            span_counts[cls] = span_counts.get(cls, 0) + 1
    classes = set(span_counts)
    for prefix in ("fault.observed.", "fault.injected.", "fault.unrecovered."):
        classes.update(
            name[len(prefix):] for name in registry.counters_with_prefix(prefix)
        )
    rows = []
    for cls in sorted(classes, key=lambda c: (-span_counts.get(c, 0), c)):
        rows.append(
            [
                cls,
                span_counts.get(cls, 0),
                registry.counter(f"fault.observed.{cls}"),
                registry.counter(f"fault.injected.{cls}"),
                registry.counter(f"fault.unrecovered.{cls}"),
            ]
        )
    return rows


# ---------------------------------------------------------------------------
# Chrome trace_event export


def chrome_trace(spans: Iterable[Span], run_id: str = "") -> dict:
    """Spans as a Chrome ``trace_event`` JSON object.

    Each tracer prefix (campaign, ``z0s3``-style shard workers) becomes a
    virtual thread so Perfetto renders shards as parallel lanes;
    timestamps and durations are microseconds per the spec.
    """
    spans = list(spans)
    prefixes = sorted({span.span_id.rsplit("-", 1)[0] for span in spans})
    tids = {prefix: i for i, prefix in enumerate(prefixes)}
    events = [
        {
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": prefix},
        }
        for prefix, tid in tids.items()
    ]
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tids[span.span_id.rsplit("-", 1)[0]],
                "name": span.name,
                "cat": "repro",
                "ts": _stamp_ns(span.start) / 1000.0,
                "dur": span_ns(span) / 1000.0,
                "args": {**span.tags, "span_id": span.span_id},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": run_id},
    }


# ---------------------------------------------------------------------------
# run diffing


@dataclass
class StageShift:
    """One stage's latency distribution, base vs head."""

    stage: str
    base_count: int
    head_count: int
    base_mean_ns: int
    head_mean_ns: int
    base_p50_ns: int
    head_p50_ns: int
    base_p90_ns: int
    head_p90_ns: int


@dataclass
class RunDiff:
    """Everything ``repro obs diff`` reports."""

    base_id: str
    head_id: str
    counter_deltas: list = field(default_factory=list)    # [name, base, head]
    histogram_count_deltas: list = field(default_factory=list)
    stage_shifts: list = field(default_factory=list)
    new_error_classes: list = field(default_factory=list)
    vanished_error_classes: list = field(default_factory=list)

    @property
    def is_zero(self) -> bool:
        """No schedule-independent difference between the runs."""
        return not self.counter_deltas and not self.histogram_count_deltas


def _stage_stats(registry: MetricsRegistry, stage: str):
    histogram = registry.histograms.get("stage." + stage)
    if histogram is None:
        return 0, 0, 0, 0
    return (
        histogram.count,
        int(round(histogram.mean_seconds * _NS)),
        int(round(histogram.quantile(0.5) * _NS)),
        int(round(histogram.quantile(0.9) * _NS)),
    )


def _error_classes(registry: MetricsRegistry) -> set:
    return {
        name[len("fault.observed."):]
        for name in registry.counters_with_prefix("fault.observed.")
    }


def diff_runs(base_registry: MetricsRegistry, head_registry: MetricsRegistry,
              base_id: str = "base", head_id: str = "head") -> RunDiff:
    diff = RunDiff(base_id=base_id, head_id=head_id)
    for name in sorted(set(base_registry.counters) | set(head_registry.counters)):
        base_n, head_n = base_registry.counter(name), head_registry.counter(name)
        if base_n != head_n:
            diff.counter_deltas.append([name, base_n, head_n])
    base_counts = base_registry.histogram_counts()
    head_counts = head_registry.histogram_counts()
    for name in sorted(set(base_counts) | set(head_counts)):
        if base_counts.get(name, 0) != head_counts.get(name, 0):
            diff.histogram_count_deltas.append(
                [name, base_counts.get(name, 0), head_counts.get(name, 0)]
            )
    stages = sorted(set(base_registry.stage_names()) | set(head_registry.stage_names()))
    for stage in stages:
        b_count, b_mean, b_p50, b_p90 = _stage_stats(base_registry, stage)
        h_count, h_mean, h_p50, h_p90 = _stage_stats(head_registry, stage)
        diff.stage_shifts.append(
            StageShift(
                stage=stage,
                base_count=b_count, head_count=h_count,
                base_mean_ns=b_mean, head_mean_ns=h_mean,
                base_p50_ns=b_p50, head_p50_ns=h_p50,
                base_p90_ns=b_p90, head_p90_ns=h_p90,
            )
        )
    base_classes, head_classes = _error_classes(base_registry), _error_classes(head_registry)
    diff.new_error_classes = sorted(head_classes - base_classes)
    diff.vanished_error_classes = sorted(base_classes - head_classes)
    return diff


# ---------------------------------------------------------------------------
# --fail-on threshold expressions


_STAGE_STATS = ("mean", "p50", "p90", "max", "total", "count")
_EXPR_RE = re.compile(
    r"\s*(?P<target>[A-Za-z0-9_.\-]+?)\s*(?P<op>>=|<=|>|<)\s*"
    r"(?P<value>\d+(?:\.\d+)?)(?P<relative>x?)\s*$"
)


@dataclass(frozen=True)
class Threshold:
    """One parsed ``--fail-on`` expression."""

    raw: str
    metric: str               # histogram name ("stage.fetch") or counter name
    stat: Optional[str]       # one of _STAGE_STATS for stage targets, else None
    op: str
    value: float
    relative: bool            # trailing "x": head/base ratio, else absolute head


def parse_fail_on(expression: str) -> Threshold:
    """Parse ``stage.fetch.p90>1.2x`` / ``fault.observed.timeout<10``."""
    match = _EXPR_RE.match(expression)
    if match is None:
        raise ValueError(
            f"bad --fail-on expression {expression!r}; expected "
            f"'<metric><op><number>[x]', e.g. 'stage.fetch.p90>1.2x'"
        )
    target = match["target"]
    stat = None
    if target.startswith("stage."):
        prefix, _, leaf = target.rpartition(".")
        if prefix == "stage" or leaf not in _STAGE_STATS:
            raise ValueError(
                f"stage targets need a stat suffix {_STAGE_STATS}, "
                f"e.g. 'stage.fetch.p90' (got {target!r})"
            )
        target, stat = prefix, leaf
    return Threshold(
        raw=expression.strip(),
        metric=target,
        stat=stat,
        op=match["op"],
        value=float(match["value"]),
        relative=match["relative"] == "x",
    )


def _metric_value(registry: MetricsRegistry, threshold: Threshold) -> float:
    if threshold.stat is None:
        return float(registry.counter(threshold.metric))
    histogram = registry.histograms.get(threshold.metric)
    if histogram is None:
        return 0.0
    if threshold.stat == "mean":
        return histogram.mean_seconds
    if threshold.stat == "p50":
        return histogram.quantile(0.5)
    if threshold.stat == "p90":
        return histogram.quantile(0.9)
    if threshold.stat == "max":
        return histogram.max_seconds
    if threshold.stat == "total":
        return histogram.total_seconds
    return float(histogram.count)


_OPS = {
    ">": lambda measured, value: measured > value,
    ">=": lambda measured, value: measured >= value,
    "<": lambda measured, value: measured < value,
    "<=": lambda measured, value: measured <= value,
}


def evaluate_threshold(
    threshold: Threshold,
    base_registry: MetricsRegistry,
    head_registry: MetricsRegistry,
):
    """(violated, human-readable detail) for one threshold."""
    head = _metric_value(head_registry, threshold)
    if threshold.relative:
        base = _metric_value(base_registry, threshold)
        if base == 0:
            measured = math.inf if head > 0 else 1.0
        else:
            measured = head / base
        unit = "x"
    else:
        measured = head
        unit = ""
    violated = _OPS[threshold.op](measured, threshold.value)
    detail = (
        f"{threshold.raw}: measured {measured:.4g}{unit} — "
        f"{'VIOLATED' if violated else 'ok'}"
    )
    return violated, detail
