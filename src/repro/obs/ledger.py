"""Persisted run artifacts — the durable write side of campaign telemetry.

A *run directory* makes one ``crawl``/``reproduce`` invocation
self-describing and comparable after the process exits:

    run-dir/
      manifest.json   campaign fingerprint, params, git describe, schema,
                      and the list of artifact files actually written
      metrics.json    lossless MetricsRegistry export (counters, gauges,
                      integer-ns histogram buckets)
      trace.jsonl     versioned span JSONL (schema header line)
      profile.json    numeric per-stage latency stats
      ledger.json     fault-ledger counters
      verdicts.jsonl  per-subject detection verdicts with evidence chains
                      (observed runs only; versioned JSONL)
      graph.jsonl     campaign attribution graph derived from the verdict
                      evidence plus the population's includer edge layer
                      (observed runs only; versioned JSONL)
      COMPLETE        atomic completion marker

The ``COMPLETE`` marker is written last via ``os.replace`` and names the
run id, so a torn run (crash mid-write, or a marker left over from a
different configuration) is detected on load rather than silently
analyzed. The run id derives from the campaign fingerprint alone — no
wall clock, no pid — so the same seed + config always lands on the same
id and two runs of one configuration diff byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import subprocess
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.faults.ledger import FaultLedger
from repro.graph.model import Graph, read_graph_jsonl, write_graph_jsonl
from repro.obs.evidence import read_verdicts_jsonl, write_verdicts_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_payload
from repro.obs.timeseries import TimeSeries, read_timeseries_jsonl, write_timeseries_jsonl
from repro.obs.trace import Span, read_jsonl, spans_to_jsonl

#: Version of the run-directory layout (manifest/metrics/profile schemas).
OBS_SCHEMA_VERSION = 1

COMPLETE_MARKER = "COMPLETE"

#: Campaign parameters that select an execution *strategy* rather than a
#: workload. Two runs that differ only here are still comparable in
#: ``repro obs diff`` — that is the whole point of diffing (e.g. a heavy
#: fault profile against a clean baseline, 8 shards against 1, or the
#: fastpath automatons against the rule-by-rule reference detectors).
EXECUTION_PARAMS = frozenset(
    {
        "shards",
        "workers",
        "executor",
        "fault_profile",
        "heartbeat",
        "fastpath",
        "timeseries_interval",
        "cooldown",
    }
)


class TornRunError(RuntimeError):
    """The run directory has no (or a mismatched) ``COMPLETE`` marker."""


class RunSchemaError(ValueError):
    """The run directory was written by a newer obs schema."""


def campaign_fingerprint(params: dict) -> str:
    """Deterministic digest of a campaign configuration."""
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _git_describe() -> str:
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        return proc.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Identity card of one persisted run."""

    run_id: str
    fingerprint: str
    command: str
    params: dict
    git_describe: str = "unknown"
    schema_version: int = OBS_SCHEMA_VERSION
    #: artifact files actually written alongside this manifest (additive
    #: v1 field; absent in older manifests and excluded from identity).
    #: A write-time inventory, not part of the run's description — excluded
    #: from equality so a loaded manifest compares equal to the one built
    #: before write_run stamped the artifact list on it.
    artifacts: tuple = field(default=(), compare=False)

    @classmethod
    def build(cls, command: str, params: dict, git_describe: Optional[str] = None) -> "RunManifest":
        fingerprint = campaign_fingerprint({"command": command, **params})
        return cls(
            run_id="run-" + fingerprint[:12],
            fingerprint=fingerprint,
            command=command,
            params=dict(params),
            git_describe=git_describe if git_describe is not None else _git_describe(),
        )

    def identity(self) -> dict:
        """The workload identity two runs must share to be comparable."""
        return {
            "command": self.command,
            "schema_version": self.schema_version,
            **{k: v for k, v in self.params.items() if k not in EXECUTION_PARAMS},
        }

    def to_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "command": self.command,
            "params": dict(sorted(self.params.items())),
            "git_describe": self.git_describe,
        }
        if self.artifacts:
            payload["artifacts"] = list(self.artifacts)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        version = payload.get("schema_version", 1)
        if not isinstance(version, int) or version > OBS_SCHEMA_VERSION:
            raise RunSchemaError(
                f"run manifest uses obs schema v{version}, but this reader only "
                f"understands up to v{OBS_SCHEMA_VERSION} — upgrade repro"
            )
        return cls(
            run_id=payload["run_id"],
            fingerprint=payload["fingerprint"],
            command=payload["command"],
            params=dict(payload.get("params", {})),
            git_describe=payload.get("git_describe", "unknown"),
            schema_version=version,
            artifacts=tuple(payload.get("artifacts", ())),
        )


@dataclass
class RunArtifacts:
    """Everything :func:`load_run` recovers from a run directory."""

    path: pathlib.Path
    manifest: RunManifest
    registry: MetricsRegistry
    spans: list
    fault_ledger: FaultLedger = field(default_factory=FaultLedger)
    profile: list = field(default_factory=list)
    verdicts: list = field(default_factory=list)
    timeseries: Optional[TimeSeries] = None
    #: attribution graph (``graph.jsonl``); ``None`` when the run has none
    graph: Optional[Graph] = None
    complete: bool = True


def _dump_json(path: pathlib.Path, payload) -> None:
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")


def write_run(
    run_dir,
    manifest: RunManifest,
    registry: MetricsRegistry,
    spans: Iterable[Span],
    fault_ledger: Optional[FaultLedger] = None,
    verdicts=None,
    timeseries: Optional[TimeSeries] = None,
    graph: Optional[Graph] = None,
) -> pathlib.Path:
    """Persist one run's artifacts; the ``COMPLETE`` marker lands last.

    ``verdicts`` (an iterable of
    :class:`~repro.obs.evidence.VerdictRecord`) lands as
    ``verdicts.jsonl``, and ``timeseries`` (a
    :class:`~repro.obs.timeseries.TimeSeries` from a run recorded with
    ``--timeseries-interval``) as ``timeseries.jsonl``; a stale file from
    a previous write into the same directory is removed when this run has
    none. The manifest lists every artifact file actually written.
    """
    directory = pathlib.Path(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    marker = directory / COMPLETE_MARKER
    if marker.exists():
        # Re-running into a dir must not leave a stale marker covering a
        # half-finished rewrite: drop it first, restore it last.
        marker.unlink()
    artifacts = ["manifest.json", "metrics.json", "trace.jsonl", "profile.json", "ledger.json"]
    verdicts = list(verdicts) if verdicts is not None else []
    verdicts_path = directory / "verdicts.jsonl"
    if verdicts:
        artifacts.append("verdicts.jsonl")
    elif verdicts_path.exists():
        verdicts_path.unlink()
    timeseries_path = directory / "timeseries.jsonl"
    has_timeseries = timeseries is not None and bool(
        timeseries.records or timeseries.alerts
    )
    if has_timeseries:
        artifacts.append("timeseries.jsonl")
    elif timeseries_path.exists():
        timeseries_path.unlink()
    graph_path = directory / "graph.jsonl"
    has_graph = graph is not None and bool(graph)
    if has_graph:
        artifacts.append("graph.jsonl")
    elif graph_path.exists():
        graph_path.unlink()
    manifest = replace(manifest, artifacts=tuple(artifacts))
    _dump_json(directory / "manifest.json", manifest.to_dict())
    _dump_json(directory / "metrics.json", registry.to_dict())
    (directory / "trace.jsonl").write_text(spans_to_jsonl(spans))
    _dump_json(directory / "profile.json", profile_payload(registry))
    _dump_json(directory / "ledger.json", (fault_ledger or FaultLedger()).to_dict())
    if verdicts:
        write_verdicts_jsonl(verdicts_path, verdicts)
    if has_timeseries:
        write_timeseries_jsonl(timeseries_path, timeseries)
    if has_graph:
        write_graph_jsonl(graph_path, graph)
    tmp = directory / (COMPLETE_MARKER + ".tmp")
    tmp.write_text(manifest.run_id + "\n")
    os.replace(tmp, marker)
    return directory


def load_run(run_dir, allow_torn: bool = False) -> RunArtifacts:
    """Load a run directory back; torn runs raise unless ``allow_torn``."""
    directory = pathlib.Path(run_dir)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"{directory} is not a run directory (no manifest.json)")
    manifest = RunManifest.from_dict(json.loads(manifest_path.read_text()))

    marker = directory / COMPLETE_MARKER
    complete = False
    if marker.exists():
        marked_id = marker.read_text().strip()
        if marked_id != manifest.run_id:
            if not allow_torn:
                raise TornRunError(
                    f"{directory}: COMPLETE marker names {marked_id!r} but the "
                    f"manifest says {manifest.run_id!r} — artifacts are from "
                    f"mixed runs"
                )
        else:
            complete = True
    elif not allow_torn:
        raise TornRunError(
            f"{directory}: no COMPLETE marker — the run is torn or still in "
            f"flight (pass allow_torn/--allow-torn to inspect anyway)"
        )

    metrics_path = directory / "metrics.json"
    registry = (
        MetricsRegistry.from_dict(json.loads(metrics_path.read_text()))
        if metrics_path.exists()
        else MetricsRegistry()
    )
    trace_path = directory / "trace.jsonl"
    spans = read_jsonl(trace_path) if trace_path.exists() else []
    ledger_path = directory / "ledger.json"
    fault_ledger = (
        FaultLedger.from_dict(json.loads(ledger_path.read_text()))
        if ledger_path.exists()
        else FaultLedger()
    )
    profile_path = directory / "profile.json"
    profile = json.loads(profile_path.read_text()) if profile_path.exists() else []
    verdicts_path = directory / "verdicts.jsonl"
    verdicts = read_verdicts_jsonl(verdicts_path) if verdicts_path.exists() else []
    timeseries_path = directory / "timeseries.jsonl"
    timeseries = (
        read_timeseries_jsonl(timeseries_path) if timeseries_path.exists() else None
    )
    graph_path = directory / "graph.jsonl"
    graph = read_graph_jsonl(graph_path) if graph_path.exists() else None
    return RunArtifacts(
        path=directory,
        manifest=manifest,
        registry=registry,
        spans=spans,
        fault_ledger=fault_ledger,
        profile=profile,
        verdicts=verdicts,
        timeseries=timeseries,
        graph=graph,
        complete=complete,
    )
