"""Structured detection evidence and the persisted verdict ledger.

Every detection decision in the pipeline — a NoCoin rule firing, a Wasm
signature lookup, an instruction-mix threshold test, a WebSocket backend
match, a Merkle-root block attribution — can be captured as an
:class:`Evidence` record: which detector spoke, what it concluded, and
the concrete facts (rule text + line number, signature hex + hash count,
feature value vs. threshold, cluster id + Merkle root) that produced the
conclusion. A :class:`VerdictRecord` bundles one subject's verdict (a
crawled domain, or an attributed block) with its evidence chain.

Verdicts persist as ``verdicts.jsonl`` in the run ledger: the first line
is a ``{"schema_version": 1}`` header, then one verdict object per line
(sorted keys, compact separators), so the file is byte-identical for the
same seed + config. Headerless legacy files still parse; files from a
*newer* schema raise :class:`VerdictSchemaError` instead of being
half-read — the same contract as ``trace.jsonl``.

The disabled-observability path never builds these objects: campaigns
only collect evidence when their ``Obs`` context is enabled, so
``NULL_OBS`` runs perform zero evidence construction and serialization
(pinned in ``benchmarks/bench_perf_primitives.py``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Iterable

#: Version of the on-disk verdict format this module reads and writes.
EVIDENCE_SCHEMA_VERSION = 1

_EVIDENCE_FIELDS = ("detector", "verdict", "summary", "details")
_VERDICT_FIELDS = (
    "subject",
    "dataset",
    "pipeline",
    "kind",
    "status",
    "nocoin_hit",
    "wasm_present",
    "is_miner",
    "family",
    "method",
    "confidence",
    "stratum",
    "evidence",
)


class VerdictSchemaError(ValueError):
    """A verdicts file declares a schema this reader does not understand."""


@dataclass(frozen=True)
class Evidence:
    """One detector's contribution to a verdict.

    ``details`` is an ordered tuple of ``(key, value)`` string pairs — the
    concrete facts behind the conclusion, in the order the detector
    produced them (rule citation first, matched span second, ...).
    """

    detector: str  # nocoin | signature | name-hint | instruction-mix | backend | websocket | dynamic | pool
    verdict: str   # short machine verdict: "hit", "miner", "benign", "attributed", ...
    summary: str   # one human-readable sentence
    details: tuple = ()

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "verdict": self.verdict,
            "summary": self.summary,
            "details": [[key, value] for key, value in self.details],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Evidence":
        unknown = set(payload) - set(_EVIDENCE_FIELDS)
        if unknown:
            raise ValueError(f"unknown evidence fields: {sorted(unknown)}")
        return cls(
            detector=payload["detector"],
            verdict=payload["verdict"],
            summary=payload.get("summary", ""),
            details=tuple(
                (str(key), str(value)) for key, value in payload.get("details", [])
            ),
        )


@dataclass(frozen=True)
class VerdictRecord:
    """One subject's detection verdict plus its evidence chain.

    ``subject`` is the crawled domain for page verdicts and a
    ``block-<height>`` identifier for pool-attributed blocks; ``pipeline``
    names which pass produced it (``zgrab0``/``zgrab1``/``chrome``/
    ``pool``).
    """

    subject: str
    dataset: str
    pipeline: str
    kind: str = "page"  # page | block
    status: str = "ok"
    nocoin_hit: bool = False
    wasm_present: bool = False
    is_miner: bool = False
    family: str = ""
    method: str = ""
    confidence: float = 0.0
    #: rank stratum of the subject (streaming populations; "" legacy)
    stratum: str = ""
    evidence: tuple = ()

    def to_dict(self) -> dict:
        payload = {
            "subject": self.subject,
            "dataset": self.dataset,
            "pipeline": self.pipeline,
            "kind": self.kind,
            "status": self.status,
            "nocoin_hit": self.nocoin_hit,
            "wasm_present": self.wasm_present,
            "is_miner": self.is_miner,
            "family": self.family,
            "method": self.method,
            "confidence": self.confidence,
            "evidence": [item.to_dict() for item in self.evidence],
        }
        if self.stratum:
            # emitted only when set: legacy verdicts.jsonl stays byte-identical
            payload["stratum"] = self.stratum
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "VerdictRecord":
        unknown = set(payload) - set(_VERDICT_FIELDS)
        if unknown:
            raise ValueError(f"unknown verdict fields: {sorted(unknown)}")
        return cls(
            subject=payload["subject"],
            dataset=payload.get("dataset", ""),
            pipeline=payload.get("pipeline", ""),
            kind=payload.get("kind", "page"),
            status=payload.get("status", "ok"),
            nocoin_hit=bool(payload.get("nocoin_hit", False)),
            wasm_present=bool(payload.get("wasm_present", False)),
            is_miner=bool(payload.get("is_miner", False)),
            family=payload.get("family", ""),
            method=payload.get("method", ""),
            confidence=float(payload.get("confidence", 0.0)),
            stratum=payload.get("stratum", ""),
            evidence=tuple(
                Evidence.from_dict(item) for item in payload.get("evidence", [])
            ),
        )


# ---------------------------------------------------------------------------
# serialization (mirrors repro.obs.trace's versioned JSONL contract)


def verdicts_to_jsonl(records: Iterable[VerdictRecord]) -> str:
    """Serialize verdicts as versioned JSONL (header line first)."""
    header = json.dumps(
        {"schema_version": EVIDENCE_SCHEMA_VERSION}, separators=(",", ":")
    )
    return header + "\n" + "".join(
        json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )


def parse_verdicts_jsonl(text: str) -> list:
    """Inverse of :func:`verdicts_to_jsonl` (lossless round-trip).

    Accepts both headered files and legacy headerless ones — a verdict
    line always carries ``subject``, so the header is unambiguous.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if lines:
        first = json.loads(lines[0])
        if isinstance(first, dict) and "schema_version" in first and "subject" not in first:
            version = first["schema_version"]
            if not isinstance(version, int) or version < 1:
                raise VerdictSchemaError(f"malformed verdict schema header: {lines[0]!r}")
            if version > EVIDENCE_SCHEMA_VERSION:
                raise VerdictSchemaError(
                    f"verdicts file uses schema v{version}, but this reader only "
                    f"understands up to v{EVIDENCE_SCHEMA_VERSION} — upgrade repro"
                )
            lines = lines[1:]
    return [VerdictRecord.from_dict(json.loads(line)) for line in lines]


def write_verdicts_jsonl(path, records: Iterable[VerdictRecord]) -> int:
    """Write a verdicts file; returns the record count."""
    records = list(records)
    pathlib.Path(path).write_text(verdicts_to_jsonl(records))
    return len(records)


def read_verdicts_jsonl(path) -> list:
    """Load a ``verdicts.jsonl`` back into :class:`VerdictRecord` objects."""
    return parse_verdicts_jsonl(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------------
# rendering (the `repro obs explain` view)


def render_verdict(record: VerdictRecord) -> str:
    """Human-readable evidence chain for one verdict."""
    mark = "MINER" if record.is_miner else ("error" if record.status != "ok" else "clean")
    lines = [
        f"{record.subject} [{record.dataset}/{record.pipeline}] -> {mark}",
        f"  nocoin_hit={record.nocoin_hit} wasm_present={record.wasm_present}"
        + (
            f" family={record.family} method={record.method}"
            f" confidence={record.confidence:g}"
            if record.is_miner
            else ""
        ),
    ]
    if not record.evidence:
        lines.append("  (no evidence recorded)")
    for item in record.evidence:
        lines.append(f"  [{item.detector}] {item.verdict}: {item.summary}")
        for key, value in item.details:
            lines.append(f"      {key} = {value}")
    return "\n".join(lines)
