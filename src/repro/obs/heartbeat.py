"""Live campaign heartbeats.

A :class:`ProgressReporter` turns the parallel executor's per-site (or
per-shard) completions into periodic one-line snapshots — domains
done/total, completion rate, ETA, open breakers, fault counts — without
the campaign code knowing when (or whether) a line is due. All timing
flows through the injectable obs clock, so under a
:class:`~repro.obs.clock.TickClock` the emitted lines are exactly
reproducible: same work, same lines, byte for byte.

Thread-safety: ``advance()`` is called concurrently by thread-mode shard
workers; a single lock guards the counters and the emission decision.
Cost when idle: campaigns run with ``progress=None`` by default, so the
no-``--heartbeat`` path performs zero clock reads and zero allocations.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, Optional

from repro.obs.clock import get_clock


class ProgressReporter:
    """Rate-limited campaign progress snapshots driven by the obs clock."""

    def __init__(
        self,
        interval: float,
        emit: Optional[Callable[[str], None]] = None,
        label: str = "campaign",
        health: Optional[Callable[[], dict]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval!r}")
        self.interval = float(interval)
        self.label = label
        self._emit = emit
        #: optional live-health provider: its key=value pairs (e.g. queue
        #: depth, shed rate, degradation tier) are appended to every line
        self._health = health
        #: timestamps default to the obs clock; the verdict service passes
        #: its sim clock so service heartbeats tick in simulated seconds
        self._now = clock if clock is not None else (lambda: get_clock().now())
        self._lock = threading.Lock()
        self._active = False
        self._started = 0.0
        self._last_emit = 0.0
        self.done = 0
        self.total = 0
        self.failed = 0
        self.faults = 0
        self.breakers_opened = 0
        self.breakers_closed = 0

    # -- lifecycle ----------------------------------------------------------------

    def begin(self, total: int, label: Optional[str] = None) -> None:
        """Arm the reporter for one campaign leg of ``total`` units."""
        with self._lock:
            if label is not None:
                self.label = label
            self.total = total
            self.done = 0
            self.failed = 0
            self.faults = 0
            self.breakers_opened = 0
            self.breakers_closed = 0
            self._started = self._now()
            self._last_emit = self._started
            self._active = True

    def advance(
        self,
        n: int = 1,
        failed: int = 0,
        faults: int = 0,
        breakers_opened: int = 0,
        breakers_closed: int = 0,
    ) -> None:
        """Record ``n`` completed units; emit a line if the interval elapsed."""
        with self._lock:
            if not self._active:
                return
            self.done += n
            self.failed += failed
            self.faults += faults
            self.breakers_opened += breakers_opened
            self.breakers_closed += breakers_closed
            now = self._now()
            if now - self._last_emit >= self.interval:
                self._last_emit = now
                self._out(self._line(now))

    def finish(self) -> None:
        """Disarm and emit the final summary line."""
        with self._lock:
            if not self._active:
                return
            self._active = False
            self._out(self._line(self._now(), final=True))

    # -- formatting ---------------------------------------------------------------

    def _out(self, line: str) -> None:
        if self._emit is not None:
            self._emit(line)
        else:
            print(line, file=sys.stderr, flush=True)

    def _line(self, now: float, final: bool = False) -> str:
        elapsed = max(now - self._started, 0.0)
        rate = self.done / elapsed if elapsed > 0 else 0.0
        open_breakers = max(self.breakers_opened - self.breakers_closed, 0)
        parts = [
            f"[hb] {self.label}",
            f"{self.done}/{self.total}",
            f"rate={rate:.1f}/s",
        ]
        if final:
            parts.append(f"elapsed={elapsed:.2f}s done")
        else:
            remaining = max(self.total - self.done, 0)
            eta = f"{remaining / rate:.1f}s" if rate > 0 else "?"
            parts.append(f"eta={eta}")
        parts.append(f"failed={self.failed}")
        parts.append(f"faults={self.faults}")
        parts.append(f"breakers_open={open_breakers}")
        if self._health is not None:
            parts.extend(f"{key}={value}" for key, value in self._health().items())
        return " ".join(parts)
