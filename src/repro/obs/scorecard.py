"""Ground-truth scorecards over persisted verdicts (``repro obs scorecard``).

The synthetic populations know exactly which sites mine (``SiteSpec.role ==
"miner"``), and every observed run persists its per-subject verdicts in
``verdicts.jsonl``. This module joins the two: rebuild the ground truth
from the run manifest's ``(dataset, seed, scale)`` — population builds are
pure functions of those — and score each detector's verdicts against it as
a confusion matrix with precision/recall, plus the paper's headline
detection factor (Table 2) recomputed from the verdicts themselves.

Scores are deterministic: same run directory → same scorecard, rendered
byte-identically. ``--fail-on 'detector.wasm.recall<0.95'`` expressions
reuse the :mod:`repro.obs.analyze` threshold grammar (absolute values
only — there is no base run to be relative to) and make the scorecard a
CI gate on detection *quality*, alongside ``obs diff``'s gates on cost.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.obs.analyze import Threshold, _OPS

#: wasm cascade methods that get their own per-method recall row
CASCADE_METHODS = ("signature", "name-hint", "instruction-mix", "backend")


@dataclass(frozen=True)
class ConfusionMatrix:
    """One detector's verdicts against ground truth."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        """TP/(TP+FP); 1.0 on an empty denominator.

        A detector that claimed nothing made no false claims — and a CI
        recall/precision gate must not trip on a dataset slice where the
        detector simply had nothing to do.
        """
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """TP/(TP+FN); 1.0 on an empty denominator (no miners to find)."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 1.0


@dataclass(frozen=True)
class ClusterScore:
    """Table-2 detection factor restricted to one includer campaign."""

    label: str
    domains: int
    miners: int
    miner_share: float
    wasm_hits: int
    blocked: int
    detection_factor: float


@dataclass
class Scorecard:
    """Per-detector scores for one run."""

    run_id: str
    #: detector name → confusion matrix, in presentation order
    matrices: dict = field(default_factory=dict)
    #: Table 2's headline, recomputed from the chrome verdicts
    detection_factor: float = 0.0
    wasm_miner_hits: int = 0
    miners_blocked_by_nocoin: int = 0
    truth_miners: int = 0
    page_verdicts: int = 0
    block_verdicts: int = 0
    datasets: tuple = ()
    #: per-includer-cluster detection factors, from the run's graph.jsonl
    clusters: list = field(default_factory=list)

    def metrics(self) -> dict:
        """Flat ``detector.<name>.<stat>`` map for ``--fail-on`` gates."""
        values = {}
        for name, matrix in self.matrices.items():
            values[f"detector.{name}.precision"] = matrix.precision
            values[f"detector.{name}.recall"] = matrix.recall
        values["detection_factor"] = self.detection_factor
        for row in self.clusters:
            # labels can contain "+" (multi-includer components); fold to
            # "-" so the gate grammar [A-Za-z0-9_.-] can address every row
            key = re.sub(r"[^A-Za-z0-9_.\-]", "-", row.label)
            values[f"cluster.{key}.detection_factor"] = row.detection_factor
            values[f"cluster.{key}.miner_share"] = row.miner_share
        return values


class StreamingTruth:
    """Lazy miner-membership view over a streaming population.

    ``domain in truth`` decodes the site index embedded in the domain and
    re-derives that one site — O(1) per verdict, no zone-sized set build.
    ``lazy`` flags that the container has no meaningful ``len``.
    """

    lazy = True

    def __init__(self, population) -> None:
        self.population = population

    def __contains__(self, domain) -> bool:
        return self.population.is_true_miner(domain)


def _streaming_truth(dataset: str, params: dict):
    """Rebuild streaming ground truth from manifest params, or ``None``."""
    population_size = int(params.get("population_size", 0) or 0)
    if not population_size:
        return None
    from repro.internet.population import DATASETS
    from repro.internet.streaming import StreamingPopulation, parse_strata

    strata_text = str(params.get("strata", "") or "")
    strata = parse_strata(strata_text, DATASETS[dataset]) if strata_text else None
    return StreamingTruth(
        StreamingPopulation(
            dataset,
            seed=int(params["seed"]),
            size=population_size,
            strata=strata,
            sample_per_stratum=int(params.get("sample_per_stratum", 0) or 0),
        )
    )


def build_ground_truth(manifest) -> dict:
    """dataset → miner-domain membership, rebuilt from the manifest.

    Population builds are pure functions of ``(dataset, seed, scale)``
    (or, for streaming runs, ``(dataset, seed, population_size, strata)``),
    so the rebuilt ground truth is exactly what the crawl ran against.
    Materialized runs yield plain sets; streaming runs yield lazy
    :class:`StreamingTruth` membership views.
    """
    from repro.internet.population import build_population

    params = manifest.params
    if manifest.command == "crawl":
        recipes = [(params["dataset"], params["seed"], params.get("scale", 1.0))]
    elif manifest.command == "reproduce":
        recipes = [
            (dataset, params["seed"], params.get("crawl_scale", 1.0))
            for dataset in str(params.get("datasets", "")).split(",")
            if dataset
        ]
    else:
        raise ValueError(
            f"cannot rebuild ground truth for command {manifest.command!r} "
            f"(expected a crawl or reproduce run)"
        )
    truth = {}
    for dataset, seed, scale in recipes:
        streaming = _streaming_truth(dataset, params)
        if streaming is not None:
            truth[dataset] = streaming
            continue
        population = build_population(dataset, seed=int(seed), scale=float(scale))
        truth[dataset] = population.ground_truth_miners()
    return truth


def build_scorecard(artifacts) -> Scorecard:
    """Score a loaded run's verdicts against rebuilt ground truth.

    ``artifacts`` is the :class:`~repro.obs.ledger.RunArtifacts` of an
    observed run; it must carry verdicts (crawls always persist them when
    run with ``--run-dir``).
    """
    if not artifacts.verdicts:
        raise ValueError(
            f"{artifacts.path} has no verdicts.jsonl — scorecards need a run "
            f"written with --run-dir by this version (re-run the campaign)"
        )
    truth = build_ground_truth(artifacts.manifest)
    card = Scorecard(
        run_id=artifacts.manifest.run_id,
        datasets=tuple(sorted(truth)),
        truth_miners=sum(
            len(domains)
            for domains in truth.values()
            if not getattr(domains, "lazy", False)
        ),
    )
    # lazy (streaming) truth has no len(); count the distinct true miners
    # that actually appeared among the verdicts instead
    lazy_true_subjects: set = set()

    counts: dict = {}  # detector name → [tp, fp, fn, tn]

    def score(name: str, predicted: bool, actual: bool) -> None:
        row = counts.setdefault(name, [0, 0, 0, 0])
        if predicted and actual:
            row[0] += 1
        elif predicted:
            row[1] += 1
        elif actual:
            row[2] += 1
        else:
            row[3] += 1

    # chrome truth miners actually visited, per method-recall denominators
    chrome_truth_seen = 0
    method_tp = {method: 0 for method in CASCADE_METHODS}
    method_fp = {method: 0 for method in CASCADE_METHODS}
    stratum_order: list = []  # strata in first-seen (rank) order

    for verdict in artifacts.verdicts:
        if verdict.kind != "page":
            card.block_verdicts += 1
            continue
        card.page_verdicts += 1
        dataset_truth = truth.get(verdict.dataset, set())
        actual = verdict.subject in dataset_truth
        if actual and getattr(dataset_truth, "lazy", False):
            lazy_true_subjects.add((verdict.dataset, verdict.subject))
        if verdict.pipeline.startswith("zgrab"):
            score("nocoin_static", verdict.nocoin_hit, actual)
            if verdict.stratum:
                if verdict.stratum not in stratum_order:
                    stratum_order.append(verdict.stratum)
                score(f"nocoin_static.{verdict.stratum}", verdict.nocoin_hit, actual)
            continue
        # chrome pipeline: both detectors saw the executed page
        score("nocoin", verdict.nocoin_hit, actual)
        score("wasm", verdict.is_miner, actual)
        if actual:
            chrome_truth_seen += 1
        if verdict.is_miner and verdict.method in method_tp:
            if actual:
                method_tp[verdict.method] += 1
            else:
                method_fp[verdict.method] += 1
        if verdict.is_miner:
            card.wasm_miner_hits += 1
            if verdict.nocoin_hit:
                card.miners_blocked_by_nocoin += 1

    card.truth_miners += len(lazy_true_subjects)

    order = ["nocoin_static"]
    # per-stratum rows directly under the detector they slice, rank order
    order.extend(f"nocoin_static.{stratum}" for stratum in stratum_order)
    order.extend(["nocoin", "wasm"])
    for name in order:
        if name in counts:
            tp, fp, fn, tn = counts[name]
            card.matrices[name] = ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)
    for method in CASCADE_METHODS:
        tp, fp = method_tp[method], method_fp[method]
        if tp or fp:
            # recall denominator: every true miner the chrome crawl saw —
            # "which share of all miners did this cascade branch catch"
            card.matrices[f"wasm.{method}"] = ConfusionMatrix(
                tp=tp, fp=fp, fn=chrome_truth_seen - tp
            )

    if card.miners_blocked_by_nocoin:
        card.detection_factor = card.wasm_miner_hits / card.miners_blocked_by_nocoin
    else:
        card.detection_factor = float("inf") if card.wasm_miner_hits else 0.0
    card.clusters = _cluster_scores(getattr(artifacts, "graph", None))
    return card


def _cluster_scores(graph) -> list:
    """Per-includer-cluster detection-factor rows from the run's graph.

    Only components anchored by a campaign includer get a row — the
    cluster slice answers "was the blocklist blind to this *campaign*",
    which only makes sense where an includer defines the campaign.
    Returns ``[]`` for runs written before graphs existed.
    """
    if graph is None:
        return []
    from repro.graph.query import clusters

    return [
        ClusterScore(
            label=component.label,
            domains=len(component.domains),
            miners=component.miners,
            miner_share=component.miner_share,
            wasm_hits=component.wasm_hits,
            blocked=component.blocked,
            detection_factor=component.detection_factor,
        )
        for component in clusters(graph)
        if component.includers
    ]


def evaluate_scorecard_threshold(threshold: Threshold, card: Scorecard):
    """(violated, detail) for one ``--fail-on`` gate on a scorecard."""
    if threshold.relative:
        raise ValueError(
            f"scorecard gates are absolute; drop the trailing 'x' in "
            f"{threshold.raw!r} (there is no base run to be relative to)"
        )
    metrics = card.metrics()
    target = threshold.metric if threshold.stat is None else (
        f"{threshold.metric}.{threshold.stat}"
    )
    if target not in metrics:
        available = ", ".join(sorted(metrics))
        raise ValueError(
            f"unknown scorecard metric {target!r}; available: {available}"
        )
    measured = metrics[target]
    violated = _OPS[threshold.op](measured, threshold.value)
    detail = (
        f"{threshold.raw}: measured {measured:.4g} — "
        f"{'VIOLATED' if violated else 'ok'}"
    )
    return violated, detail


SCORECARD_HEADER = ["detector", "tp", "fp", "fn", "tn", "precision", "recall"]


def scorecard_rows(card: Scorecard) -> list:
    """Rows for the per-detector table (pair with ``SCORECARD_HEADER``)."""
    return [
        [
            name,
            matrix.tp,
            matrix.fp,
            matrix.fn,
            matrix.tn,
            f"{matrix.precision:.3f}",
            f"{matrix.recall:.3f}",
        ]
        for name, matrix in card.matrices.items()
    ]


CLUSTER_HEADER = [
    "includer cluster", "domains", "miners", "miner share", "wasm", "blocked", "factor",
]


def cluster_score_rows(card: Scorecard) -> list:
    """Rows for the per-includer-cluster table (pair with ``CLUSTER_HEADER``)."""
    return [
        [
            row.label,
            row.domains,
            row.miners,
            f"{row.miner_share:.1%}",
            row.wasm_hits,
            row.blocked,
            "-" if not row.wasm_hits else (
                "inf" if row.detection_factor == float("inf")
                else f"{row.detection_factor:.1f}x"
            ),
        ]
        for row in card.clusters
    ]


def render_scorecard_summary(card: Scorecard) -> str:
    """The one-line verdict summary above the table."""
    factor = (
        "inf" if card.detection_factor == float("inf")
        else f"{card.detection_factor:.1f}"
    )
    return (
        f"run {card.run_id} datasets={','.join(card.datasets)} "
        f"pages={card.page_verdicts} blocks={card.block_verdicts} "
        f"truth_miners={card.truth_miners}\n"
        f"wasm miners found: {card.wasm_miner_hits} "
        f"(blocked by NoCoin: {card.miners_blocked_by_nocoin}) -> "
        f"detection factor {factor}x"
    )
