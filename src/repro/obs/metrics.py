"""Unified metrics registry with a single merge law.

Campaign accounting used to be split across ad-hoc aggregations —
``ShardMetrics``/``CampaignMetrics`` summed their own fields, the
``FaultLedger`` merged its own counters. The registry subsumes them under
one algebra so every aggregation path (serial, thread, process, resumed)
is the *same* operation:

- **counters** — monotone event counts; merge by integer addition,
- **gauges** — high-water marks (queue depths, peak RSS); merge by max,
- **histograms** — latency distributions over fixed bucket bounds; merge
  bucket-wise. Durations are stored as integer nanoseconds, so merging is
  exactly associative and commutative (no float re-association drift) and
  an empty registry is a true identity element. The property suite
  (``tests/test_obs_properties.py``) pins these laws.

Everything serializes to plain dicts (:meth:`MetricsRegistry.to_dict` /
:meth:`from_dict`) for checkpointing and cross-process transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Default latency bucket upper bounds, in seconds (last bucket is +inf).
DEFAULT_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

_NS = 1_000_000_000


def _to_ns(seconds: float) -> int:
    return int(round(seconds * _NS))


@dataclass
class Histogram:
    """Fixed-bound latency histogram with exact integer arithmetic."""

    bounds: tuple = DEFAULT_BOUNDS  # ascending upper bounds, seconds
    counts: list = None  # len(bounds) + 1 (last = overflow)
    count: int = 0
    total_ns: int = 0
    min_ns: Optional[int] = None
    max_ns: Optional[int] = None

    def __post_init__(self) -> None:
        self.bounds = tuple(self.bounds)
        # bucketing compares in the exact integer-ns domain: dividing ns
        # by 1e9 can round an observation *down* onto a bound it exceeds,
        # silently shifting it a bucket low at bucket boundaries
        self._bounds_ns = tuple(_to_ns(bound) for bound in self.bounds)
        if self.counts is None:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("counts must have len(bounds) + 1 entries")

    def observe(self, seconds: float) -> None:
        self.observe_ns(_to_ns(seconds))

    def observe_ns(self, ns: int) -> None:
        bucket = len(self.bounds)
        for i, bound_ns in enumerate(self._bounds_ns):
            if ns <= bound_ns:
                bucket = i
                break
        self.counts[bucket] += 1
        self.count += 1
        self.total_ns += ns
        self.min_ns = ns if self.min_ns is None else min(self.min_ns, ns)
        self.max_ns = ns if self.max_ns is None else max(self.max_ns, ns)

    def merge(self, other: "Histogram") -> "Histogram":
        if self.bounds != other.bounds:
            raise ValueError(f"bucket bounds differ: {self.bounds} vs {other.bounds}")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min_ns is not None:
            self.min_ns = other.min_ns if self.min_ns is None else min(self.min_ns, other.min_ns)
        if other.max_ns is not None:
            self.max_ns = other.max_ns if self.max_ns is None else max(self.max_ns, other.max_ns)
        return self

    # -- summary statistics ---------------------------------------------------------

    @property
    def mean_seconds(self) -> float:
        return (self.total_ns / self.count) / _NS if self.count else 0.0

    @property
    def total_seconds(self) -> float:
        return self.total_ns / _NS

    @property
    def max_seconds(self) -> float:
        return (self.max_ns or 0) / _NS

    @property
    def min_seconds(self) -> float:
        return (self.min_ns or 0) / _NS

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket.

        Exact at the extremes (min/max are tracked precisely); inner
        quantiles are bucket-resolution, which is what a merged-histogram
        representation can honestly offer. Inner results are clamped into
        ``[min, max]`` so quantiles are monotone in ``q`` even when a
        bound's float form sits a hair under the tracked extreme.
        """
        if not self.count:
            return 0.0
        if q <= 0:
            return self.min_seconds
        if q >= 1:
            return self.max_seconds
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                if i < len(self.bounds):
                    return max(min(self.bounds[i], self.max_seconds), self.min_seconds)
                return self.max_seconds
        return self.max_seconds

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        return cls(
            bounds=tuple(payload["bounds"]),
            counts=list(payload["counts"]),
            count=payload["count"],
            total_ns=payload["total_ns"],
            min_ns=payload["min_ns"],
            max_ns=payload["max_ns"],
        )


@dataclass
class MetricsRegistry:
    """Counters, gauges, and histograms under one merge law."""

    counters: dict = field(default_factory=dict)    # name → int
    gauges: dict = field(default_factory=dict)      # name → float (high-water)
    histograms: dict = field(default_factory=dict)  # name → Histogram

    # -- recording -------------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a counter; zero increments are identity-preserving no-ops."""
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge_max(self, name: str, value: float) -> None:
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float, bounds: tuple = DEFAULT_BOUNDS) -> None:
        self.observe_ns(name, _to_ns(seconds), bounds)

    def observe_ns(self, name: str, ns: int, bounds: tuple = DEFAULT_BOUNDS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds=bounds)
        histogram.observe_ns(ns)

    # -- the merge law ---------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` in: counters add, gauges max, histograms merge."""
        for name, n in other.counters.items():
            self.inc(name, n)
        for name, value in other.gauges.items():
            self.gauge_max(name, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(histogram.to_dict())
            else:
                mine.merge(histogram)
        return self

    # -- views -----------------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict:
        return {k: v for k, v in self.counters.items() if k.startswith(prefix)}

    def histogram_counts(self) -> dict:
        """name → observation count — the schedule-independent histogram view."""
        return {name: h.count for name, h in self.histograms.items()}

    def stage_names(self) -> list:
        return sorted(
            name[len("stage."):] for name in self.histograms if name.startswith("stage.")
        )

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histograms[name].to_dict() for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        return cls(
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms={
                name: Histogram.from_dict(h)
                for name, h in payload.get("histograms", {}).items()
            },
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.to_dict() == other.to_dict()
