"""Multi-window SLO burn-rate alerting over windowed telemetry.

An :class:`AlertRule` is one ``--fail-on``-style threshold expression
(``shed_rate>0.2``, ``p99>1.0``, ``error_rate>0.5``) evaluated over
*two or more* trailing windows of tick records, SRE burn-rate style: the
rule **fires** only when the condition holds in *every* window (the
short window proves the problem is happening now, the long window proves
it is burning real error budget rather than blipping), and **resolves**
as soon as the short window recovers. Firings and resolutions are
recorded as structured :class:`AlertEvent`\\ s — evidence-style objects
citing each window's length, the observed value, the threshold, and the
degradation tier in force — and persist inside ``timeseries.jsonl``.

Target resolution mirrors ``repro.service.slo`` but over window deltas:

1. latency shorthands (``p50``/``p90``/``p95``/``p99``/``mean``/``max``)
   read the windowed ``service.latency`` histogram,
2. derived rates (``shed_rate``, ``error_rate``, ``degraded_rate``,
   ``deadline_rate``) are ratios of windowed counter deltas,
3. ``<histogram>.<stat>`` reads any windowed histogram,
4. anything else is a counter, resolved as a per-second rate over the
   window — the counters→rates half of the recorder contract.

Rules are evaluated only once their longest window is fully populated
with ticks, so a 15-second budget never fires off 2 seconds of data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs import analyze

_LATENCY_SHORTHANDS = ("mean", "max", "p50", "p90", "p95", "p99")
_HISTOGRAM_STATS = ("mean", "max", "total", "count", "p50", "p90", "p95", "p99")

#: Degradation tiers, most degraded first — mirrors (and is pinned
#: against) ``repro.core.detector.DEGRADATION_TIERS``; duplicated here so
#: the obs layer stays importable without the detection stack.
TIER_SEVERITY = ("static-only", "no-classifier", "no-dynamic", "full")


@dataclass(frozen=True)
class AlertRule:
    """One burn-rate rule: a threshold that must hold in every window."""

    name: str
    target: str
    op: str
    value: float
    #: trailing window lengths in seconds, shortest first
    windows: tuple

    @classmethod
    def parse(cls, name: str, expression: str, windows: Iterable[float]) -> "AlertRule":
        match = analyze._EXPR_RE.match(expression)
        if match is None:
            raise ValueError(
                f"bad alert expression {expression!r}; expected "
                f"'<target><op><number>', e.g. 'shed_rate>0.2' or 'p99>1.0'"
            )
        if match["relative"] == "x":
            raise ValueError(
                f"alert rules are absolute; drop the trailing 'x' in {expression!r}"
            )
        windows = tuple(sorted(float(w) for w in windows))
        if not windows:
            raise ValueError(f"alert rule {name!r} needs at least one window")
        if any(w <= 0 for w in windows):
            raise ValueError(f"alert windows must be positive, got {windows}")
        return cls(
            name=name,
            target=match["target"],
            op=match["op"],
            value=float(match["value"]),
            windows=windows,
        )

    @property
    def expr(self) -> str:
        return f"{self.target}{self.op}{self.value:g}"


@dataclass(frozen=True)
class AlertEvent:
    """One firing or resolution, with the evidence that justified it."""

    rule: str
    kind: str  # fire | resolve
    tick: int
    time: float
    expr: str
    tier: str
    #: per-window readings: (seconds, observed, threshold, op) tuples
    windows: tuple = ()
    summary: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "tick": self.tick,
            "time": self.time,
            "expr": self.expr,
            "tier": self.tier,
            "windows": [
                {
                    "seconds": seconds,
                    "observed": observed,
                    "threshold": threshold,
                    "op": op,
                }
                for seconds, observed, threshold, op in self.windows
            ],
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AlertEvent":
        return cls(
            rule=payload["rule"],
            kind=payload["kind"],
            tick=payload["tick"],
            time=payload["time"],
            expr=payload.get("expr", ""),
            tier=payload.get("tier", "n/a"),
            windows=tuple(
                (w["seconds"], w["observed"], w["threshold"], w["op"])
                for w in payload.get("windows", [])
            ),
            summary=payload.get("summary", ""),
        )


# ---------------------------------------------------------------------------
# windowed target resolution


def _window_sum(records, name: str) -> int:
    return sum(record.counters.get(name, 0) for record in records)


def _window_prefix_sum(records, prefix: str) -> int:
    return sum(
        delta
        for record in records
        for name, delta in record.counters.items()
        if name.startswith(prefix)
    )


def _window_histogram(records, name: str):
    merged = None
    for record in records:
        window = record.histograms.get(name)
        if window is None:
            continue
        merged = window.copy() if merged is None else merged.merge(window)
    return merged


def _histogram_stat(window, stat: str) -> float:
    if window is None:
        return 0.0
    if stat == "mean":
        return window.mean_seconds
    if stat == "max":
        return window.quantile(1.0)
    if stat == "total":
        return window.total_ns / 1e9
    if stat == "count":
        return float(window.count)
    return window.quantile(float(stat[1:]) / 100.0)


def _window_ratio(records, numerator: int, denominator_name: str) -> float:
    return numerator / max(1, _window_sum(records, denominator_name))


def _derived_rate(records, target: str):
    if target == "shed_rate":
        rejected = (
            _window_sum(records, "service.rejected.rate_limit")
            + _window_sum(records, "service.rejected.queue_full")
            + _window_sum(records, "service.rejected.deadline")
        )
        return _window_ratio(records, rejected, "service.requests.offered")
    if target == "deadline_rate":
        return _window_ratio(
            records,
            _window_sum(records, "service.rejected.deadline"),
            "service.requests.offered",
        )
    if target == "error_rate":
        return _window_ratio(
            records,
            _window_sum(records, "service.fetch.errors"),
            "service.requests.completed",
        )
    if target == "degraded_rate":
        return _window_ratio(
            records,
            _window_prefix_sum(records, "service.degraded."),
            "service.requests.completed",
        )
    return None


def windowed_value(target: str, records, interval: float) -> float:
    """Resolve one alert target over a trailing window of tick records."""
    if target in _LATENCY_SHORTHANDS:
        return _histogram_stat(_window_histogram(records, "service.latency"), target)
    derived = _derived_rate(records, target)
    if derived is not None:
        return derived
    prefix, _, stat = target.rpartition(".")
    if prefix and stat in _HISTOGRAM_STATS:
        window = _window_histogram(records, prefix)
        if window is not None:
            return _histogram_stat(window, stat)
    seconds = max(len(records) * interval, interval)
    return _window_sum(records, target) / seconds


def worst_tier(records) -> str:
    """Most degraded tier with traffic in the window ('n/a' if none)."""
    for tier in TIER_SEVERITY:
        if _window_sum(records, f"service.tier.{tier}"):
            return tier
    return "n/a"


# ---------------------------------------------------------------------------
# rule sets


@dataclass(frozen=True)
class AlertRuleSet:
    """The rules a recorder evaluates after every completed tick."""

    rules: tuple = ()

    def __iter__(self):
        return iter(self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    def ticks(self, window_seconds: float, interval: float) -> int:
        return max(1, int(round(window_seconds / interval)))

    def max_window_ticks(self, interval: float) -> int:
        longest = max((w for rule in self.rules for w in rule.windows), default=0.0)
        return self.ticks(longest, interval) if longest else 0

    def evaluate(self, records: list, interval: float, firing: dict) -> list:
        """One tick's fire/resolve decisions; mutates ``firing`` state.

        ``records`` must be the ring's retained ticks in ascending order;
        ``firing`` maps rule name → currently-firing bool and carries the
        hysteresis between calls.
        """
        if not records:
            return []
        latest = records[-1]
        events = []
        for rule in self.rules:
            readings = []
            populated = True
            violated_all = True
            for window_seconds in rule.windows:
                k = self.ticks(window_seconds, interval)
                if len(records) < k:
                    populated = False
                    break
                observed = windowed_value(rule.target, records[-k:], interval)
                readings.append((window_seconds, observed, rule.value, rule.op))
                if not analyze._OPS[rule.op](observed, rule.value):
                    violated_all = False
                    break
            if firing.get(rule.name):
                # resolve on short-window recovery: the condition no
                # longer holds over the most recent window
                short_k = self.ticks(rule.windows[0], interval)
                observed = windowed_value(rule.target, records[-short_k:], interval)
                if not analyze._OPS[rule.op](observed, rule.value):
                    firing[rule.name] = False
                    reading = (rule.windows[0], observed, rule.value, rule.op)
                    events.append(
                        AlertEvent(
                            rule=rule.name,
                            kind="resolve",
                            tick=latest.tick,
                            time=latest.time,
                            expr=rule.expr,
                            tier=worst_tier(records[-short_k:]),
                            windows=(reading,),
                            summary=(
                                f"{rule.name} resolved: {rule.expr} no longer holds "
                                f"over {rule.windows[0]:g}s (observed {observed:.4g})"
                            ),
                        )
                    )
                continue
            if populated and violated_all:
                firing[rule.name] = True
                short_k = self.ticks(rule.windows[0], interval)
                tier = worst_tier(records[-short_k:])
                cited = "; ".join(
                    f"{seconds:g}s window observed {observed:.4g}"
                    for seconds, observed, _, _ in readings
                )
                events.append(
                    AlertEvent(
                        rule=rule.name,
                        kind="fire",
                        tick=latest.tick,
                        time=latest.time,
                        expr=rule.expr,
                        tier=tier,
                        windows=tuple(readings),
                        summary=(
                            f"{rule.name} firing: {rule.expr} held in every window "
                            f"({cited}; tier {tier})"
                        ),
                    )
                )
        return events


def default_service_rules() -> AlertRuleSet:
    """The burn-rate rules `serve`/`loadgen` evaluate by default.

    Windows are sized for the simulated service (nominal capacity ~24 r/s,
    request deadlines of 2 s): 5 s proves "now", 15 s proves sustained
    budget burn. A 2×-capacity overload fires ``shed-burn`` within the
    first long window; a ¼×-capacity run stays silent on every rule.
    """
    return AlertRuleSet(
        rules=(
            AlertRule.parse("shed-burn", "shed_rate>0.2", windows=(5.0, 15.0)),
            AlertRule.parse("latency-burn", "p99>1.0", windows=(5.0, 15.0)),
            AlertRule.parse("error-burn", "error_rate>0.5", windows=(5.0, 15.0)),
        )
    )
