"""The observability facade and per-stage profiling.

:class:`Obs` bundles a tracer, a metrics registry, and the injectable
clock behind one ``span()`` call so pipeline code needs a single hook:

    with obs.span("fetch", domain=site.domain) as span:
        ...

Each closed span also lands its duration in the ``stage.<name>``
histogram, which is what the ``--profile`` table renders.

**Disabled path**: the module-level :data:`NULL_OBS` singleton answers
``span()`` with one shared pre-built no-op context manager — no clock
read, no allocation, no branch beyond the ``enabled`` check — so leaving
observability off costs nothing on the per-site hot path (pinned by the
micro-benchmark in ``bench_perf_primitives``).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class _NullSpan:
    """Inert span: accepts tags, records nothing."""

    __slots__ = ()
    span_id = ""
    parent_id = ""
    name = ""
    duration = 0.0

    def set_tag(self, key, value) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _ObsSpanContext:
    """Closes the traced span and books its latency histogram."""

    __slots__ = ("_obs", "_inner")

    def __init__(self, obs: "Obs", inner) -> None:
        self._obs = obs
        self._inner = inner

    def __enter__(self):
        return self._inner.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._inner._span
        suppressed = self._inner.__exit__(exc_type, exc, tb)
        self._obs.registry.observe("stage." + span.name, span.duration)
        if exc_type is not None:
            self._obs.registry.inc("stage." + span.name + ".errors")
        return suppressed


class Obs:
    """One execution context's tracer + registry (+ enabled flag)."""

    __slots__ = ("tracer", "registry", "enabled")

    def __init__(self, tracer=None, registry=None, enabled: bool = True, prefix: str = "t"):
        self.tracer = tracer if tracer is not None else Tracer(prefix=prefix)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.enabled = enabled

    def span(self, name: str, **tags):
        if not self.enabled:
            return _NULL_CONTEXT
        return _ObsSpanContext(self, self.tracer.span(name, **tags))

    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.registry.inc(name, n)

    def __repr__(self) -> str:
        return (
            f"Obs(enabled={self.enabled}, spans={len(self.tracer.spans)}, "
            f"counters={len(self.registry.counters)})"
        )


#: The process-wide disabled instance — the default everywhere.
NULL_OBS = Obs(enabled=False, prefix="null")


def make_obs(prefix: str = "t") -> Obs:
    """A fresh enabled observability context."""
    return Obs(prefix=prefix)


# ---------------------------------------------------------------------------
# profile rendering


PROFILE_HEADER = ["stage", "count", "errors", "total", "mean", "p50", "p90", "max"]


def profile_rows(registry: MetricsRegistry) -> list:
    """Per-stage latency rows for :func:`repro.analysis.reporting.render_table`.

    Stages sort by total time spent, descending — the attribution view:
    where did the campaign's wall clock actually go.
    """
    names = sorted(
        registry.stage_names(),
        key=lambda name: -registry.histograms["stage." + name].total_ns,
    )
    rows = []
    for name in names:
        histogram = registry.histograms["stage." + name]
        rows.append(
            [
                name,
                histogram.count,
                registry.counter("stage." + name + ".errors"),
                f"{histogram.total_seconds:.3f}s",
                f"{histogram.mean_seconds * 1e3:.2f}ms",
                f"{histogram.quantile(0.5) * 1e3:.2f}ms",
                f"{histogram.quantile(0.9) * 1e3:.2f}ms",
                f"{histogram.max_seconds * 1e3:.2f}ms",
            ]
        )
    return rows


def profile_payload(registry: MetricsRegistry) -> list:
    """Numeric per-stage stats (integer ns) for ``profile.json``.

    Same ordering as :func:`profile_rows` (total time desc, then name) but
    machine-readable — the run ledger persists this so ``repro obs
    report`` can render a profile without re-deriving it.
    """
    _NS = 1_000_000_000
    names = sorted(
        registry.stage_names(),
        key=lambda name: (-registry.histograms["stage." + name].total_ns, name),
    )
    payload = []
    for name in names:
        histogram = registry.histograms["stage." + name]
        payload.append(
            {
                "stage": name,
                "count": histogram.count,
                "errors": registry.counter("stage." + name + ".errors"),
                "total_ns": histogram.total_ns,
                "mean_ns": int(round(histogram.mean_seconds * _NS)),
                "p50_ns": int(round(histogram.quantile(0.5) * _NS)),
                "p90_ns": int(round(histogram.quantile(0.9) * _NS)),
                "max_ns": histogram.max_ns or 0,
            }
        )
    return payload


def render_profile(registry: MetricsRegistry, title: str = "stage profile") -> str:
    from repro.analysis.reporting import render_table

    rows = profile_rows(registry)
    if not rows:
        return f"{title}: (no stages recorded)"
    return render_table(PROFILE_HEADER, rows, title=title)
