"""Lightweight structured tracing for campaign pipelines.

A :class:`Span` records one timed stage of work — ``campaign`` → ``shard``
→ ``site`` → ``fetch``/``parse``/``detect``/``ws-poll`` — with an id, a
parent link, start/end stamps from the injectable obs clock, and string
tags (``domain``, ``error_class``, …). A :class:`Tracer` hands out spans
via a context manager, auto-parenting nested spans through an explicit
stack, and serializes the collected list to JSONL (``--trace-out``).

Determinism: span ids are ``<prefix>-<sequence>``; each shard worker gets
its own tracer with a shard-derived prefix, so the id *set* of a sharded
run is independent of worker count and completion order — only the
durations reflect the real schedule. :func:`read_jsonl` inverts
:meth:`Tracer.write_jsonl` losslessly (floats round-trip exactly through
JSON's shortest-repr encoding).

File format: the first line is a ``{"schema_version": 1}`` header, then
one span object per line. Headerless files (written before the header
existed) still parse; a file from a *newer* schema raises
:class:`TraceSchemaError` instead of being half-read.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.clock import get_clock

#: Version of the on-disk trace format this module reads and writes.
TRACE_SCHEMA_VERSION = 1

_FIELDS = ("span_id", "parent_id", "name", "start", "end", "tags")


class TraceSchemaError(ValueError):
    """A trace file declares a schema this reader does not understand."""


@dataclass
class Span:
    """One timed stage of work."""

    span_id: str
    name: str
    start: float
    end: float = 0.0
    parent_id: str = ""
    tags: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set_tag(self, key: str, value) -> None:
        self.tags[str(key)] = str(value)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        unknown = set(payload) - set(_FIELDS)
        if unknown:
            raise ValueError(f"unknown span fields: {sorted(unknown)}")
        return cls(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id", ""),
            name=payload["name"],
            start=payload["start"],
            end=payload.get("end", 0.0),
            tags=dict(payload.get("tags", {})),
        )


class _SpanContext:
    """Context manager closing a span (and popping the tracer stack)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self._span.set_tag("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects spans for one execution context (campaign or shard).

    Not safe for concurrent use by multiple threads — the sharded
    executor gives every shard worker its own tracer and merges the span
    lists afterwards (see :meth:`adopt`), which is also what keeps ids
    deterministic.
    """

    def __init__(self, prefix: str = "t", clock=None) -> None:
        self.prefix = prefix
        self._clock = clock
        self.spans: list[Span] = []
        self._seq = 0
        self._stack: list[Span] = []

    @property
    def clock(self):
        return self._clock if self._clock is not None else get_clock()

    def span(self, name: str, **tags) -> _SpanContext:
        """Open a child of the innermost open span (or a root span)."""
        self._seq += 1
        span = Span(
            span_id=f"{self.prefix}-{self._seq}",
            name=name,
            start=self.clock.now(),
            parent_id=self._stack[-1].span_id if self._stack else "",
            tags={key: str(value) for key, value in tags.items()},
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.spans.append(span)

    # -- aggregation ---------------------------------------------------------------

    def adopt(self, spans: Iterable[Span], parent_id: str = "") -> None:
        """Merge another tracer's spans, re-rooting orphans under ``parent_id``.

        Shard workers trace independently; the campaign adopts their span
        lists and links each shard's root spans to the campaign span, so
        the exported trace is one connected tree.
        """
        for span in spans:
            if parent_id and not span.parent_id:
                span.parent_id = parent_id
            self.spans.append(span)

    def counts_by_name(self) -> dict:
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    # -- serialization ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        return spans_to_jsonl(self.spans)

    def write_jsonl(self, path) -> int:
        """Write a header + one span object per line; returns the span count."""
        pathlib.Path(path).write_text(self.to_jsonl())
        return len(self.spans)


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize spans as versioned JSONL (header line first)."""
    header = json.dumps({"schema_version": TRACE_SCHEMA_VERSION}, separators=(",", ":"))
    return header + "\n" + "".join(
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        for span in spans
    )


def parse_jsonl(text: str) -> list:
    """Inverse of :func:`spans_to_jsonl` (lossless round-trip).

    Accepts both headered files and legacy headerless ones — a span line
    always carries ``span_id``, so the header is unambiguous.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if lines:
        first = json.loads(lines[0])
        if isinstance(first, dict) and "schema_version" in first and "span_id" not in first:
            version = first["schema_version"]
            if not isinstance(version, int) or version < 1:
                raise TraceSchemaError(f"malformed trace schema header: {lines[0]!r}")
            if version > TRACE_SCHEMA_VERSION:
                raise TraceSchemaError(
                    f"trace file uses schema v{version}, but this reader only "
                    f"understands up to v{TRACE_SCHEMA_VERSION} — upgrade repro"
                )
            lines = lines[1:]
    return [Span.from_dict(json.loads(line)) for line in lines]


def read_jsonl(path) -> list:
    """Load a ``--trace-out`` file back into :class:`Span` objects."""
    return parse_jsonl(pathlib.Path(path).read_text())
