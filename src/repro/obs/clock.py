"""Injectable wall-clock for all campaign timing.

Every duration the pipelines measure — shard wall clocks, stage latency
histograms, span start/end stamps — is read from the *process-wide obs
clock* instead of :func:`time.perf_counter` directly. Real runs keep the
default :class:`PerfClock`; tests install a :class:`TickClock`, whose
reads advance by a fixed quantum, making ``ShardMetrics.domains_per_sec``
and ``CampaignMetrics.parallel_efficiency`` exactly reproducible (the
wall-clock nondeterminism that previously made them untestable).

The clock is installed with :func:`set_clock` or, scoped, with the
:func:`use_clock` context manager. Forked process-pool workers inherit
the parent's installed clock; thread workers share it (``TickClock`` is
lock-protected, so concurrent reads stay strictly monotonic).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class PerfClock:
    """The real monotonic high-resolution clock."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return "PerfClock()"


class TickClock:
    """Deterministic clock: every read advances time by a fixed tick.

    Under a single thread, the N-th read always returns
    ``start + N * tick``, so any quantity derived from paired reads
    (durations, rates, efficiencies) is a pure function of the work done
    — identical across runs. Reads are serialized by a lock, so the clock
    stays strictly monotonic under thread pools too (though interleaving,
    and hence thread-mode durations, is scheduler-dependent).
    """

    __slots__ = ("_now", "tick", "_lock")

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self._now = float(start)
        self.tick = float(tick)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            self._now += self.tick
            return self._now

    @property
    def reads(self) -> int:
        """Number of reads so far (for zero-overhead assertions)."""
        with self._lock:
            return round(self._now / self.tick)

    def __repr__(self) -> str:
        return f"TickClock(now={self._now:.3f}, tick={self.tick})"


_default_clock = PerfClock()


def get_clock():
    """The currently installed obs clock."""
    return _default_clock


def set_clock(clock):
    """Install ``clock`` process-wide; returns the previously installed one."""
    global _default_clock
    previous = _default_clock
    _default_clock = clock
    return previous


@contextmanager
def use_clock(clock):
    """Scoped clock install (tests): restores the previous clock on exit."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)
