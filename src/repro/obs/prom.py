"""Prometheus text-format export of a run's metrics.

``repro obs export RUN --format prom`` renders a persisted
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus exposition
format, so any external scraper/dashboard stack can consume a run (or a
live ``timeseries.jsonl``-refreshed run directory) without repro-specific
tooling:

- counters become ``<prefix>_<name>_total`` counter samples,
- gauges become gauge samples,
- histograms become the conventional cumulative ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` triplet (bounds in seconds),
- service dimensions embedded in metric names
  (``service.tenant.tenant-0.offered``) are lifted into labels via
  :func:`~repro.obs.timeseries.parse_dimensions`, so per-tenant /
  per-tier / per-bundle / per-stratum series group the way a Prometheus
  user expects.

Output is deterministically ordered (sorted metric, then sorted labels),
so twin same-seed runs export byte-identical text.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import parse_dimensions

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(key)}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


def registry_to_prom(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render a registry as Prometheus exposition text."""
    lines = []

    def metric_name(base: str, suffix: str = "") -> str:
        return _sanitize(f"{prefix}.{base}") + suffix

    counter_groups: dict = {}
    for name, value in registry.counters.items():
        base, labels = parse_dimensions(name)
        counter_groups.setdefault(metric_name(base, "_total"), []).append(
            (labels, value)
        )
    for metric in sorted(counter_groups):
        lines.append(f"# TYPE {metric} counter")
        for labels, value in sorted(
            counter_groups[metric], key=lambda item: sorted(item[0].items())
        ):
            lines.append(f"{metric}{_labels_text(labels)} {_format_value(value)}")

    gauge_groups: dict = {}
    for name, value in registry.gauges.items():
        base, labels = parse_dimensions(name)
        gauge_groups.setdefault(metric_name(base), []).append((labels, value))
    for metric in sorted(gauge_groups):
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in sorted(
            gauge_groups[metric], key=lambda item: sorted(item[0].items())
        ):
            lines.append(f"{metric}{_labels_text(labels)} {_format_value(float(value))}")

    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        base, labels = parse_dimensions(name)
        metric = metric_name(base, "_seconds")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_bound(bound)
            lines.append(
                f"{metric}_bucket{_labels_text(bucket_labels)} {cumulative}"
            )
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(f"{metric}_bucket{_labels_text(bucket_labels)} {histogram.count}")
        lines.append(
            f"{metric}_sum{_labels_text(labels)} {_format_value(histogram.total_ns / 1e9)}"
        )
        lines.append(f"{metric}_count{_labels_text(labels)} {histogram.count}")

    return "\n".join(lines) + "\n" if lines else ""
