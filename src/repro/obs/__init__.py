"""Campaign observability: tracing, unified metrics, stage profiling.

The three legs of production-scale campaign accounting:

- :mod:`repro.obs.clock` — the injectable wall clock (``PerfClock`` in
  real runs, ``TickClock`` in tests) every duration is read from,
- :mod:`repro.obs.trace` — structured spans
  (``campaign → shard → site → fetch/parse/detect/ws-poll``) exported as
  JSONL via ``--trace-out``,
- :mod:`repro.obs.metrics` — the counters/gauges/histograms registry
  whose single ``merge()`` law keeps sharded aggregation bit-identical
  and mode-invariant,
- :mod:`repro.obs.profile` — the :class:`Obs` facade pipelines hook into,
  plus the ``--profile`` per-stage latency table,
- :mod:`repro.obs.ledger` — persisted run directories (``--run-dir``):
  manifest, metrics, trace, profile, fault ledger, atomic ``COMPLETE``,
- :mod:`repro.obs.analyze` — critical-path attribution, Chrome-trace
  export, and cross-run diffing with ``--fail-on`` regression gates,
- :mod:`repro.obs.heartbeat` — live campaign progress snapshots
  (``--heartbeat``), exactly reproducible under ``TickClock``.
"""

from repro.obs.alerts import (
    AlertEvent,
    AlertRule,
    AlertRuleSet,
    default_service_rules,
    windowed_value,
)
from repro.obs.clock import PerfClock, TickClock, get_clock, set_clock, use_clock
from repro.obs.heartbeat import ProgressReporter
from repro.obs.ledger import (
    OBS_SCHEMA_VERSION,
    RunArtifacts,
    RunManifest,
    TornRunError,
    load_run,
    write_run,
)
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.profile import (
    NULL_OBS,
    Obs,
    make_obs,
    profile_payload,
    profile_rows,
    render_profile,
)
from repro.obs.prom import registry_to_prom
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA_VERSION,
    HistogramWindow,
    RecorderProgress,
    TickRecord,
    TimeSeries,
    TimeSeriesRecorder,
    TimeSeriesSchemaError,
    parse_dimensions,
    read_timeseries_jsonl,
    write_timeseries_jsonl,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    TraceSchemaError,
    Tracer,
    parse_jsonl,
    read_jsonl,
    spans_to_jsonl,
)

__all__ = [
    "AlertEvent",
    "AlertRule",
    "AlertRuleSet",
    "DEFAULT_BOUNDS",
    "Histogram",
    "HistogramWindow",
    "MetricsRegistry",
    "NULL_OBS",
    "OBS_SCHEMA_VERSION",
    "Obs",
    "PerfClock",
    "ProgressReporter",
    "RecorderProgress",
    "RunArtifacts",
    "RunManifest",
    "Span",
    "TIMESERIES_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TickClock",
    "TickRecord",
    "TimeSeries",
    "TimeSeriesRecorder",
    "TimeSeriesSchemaError",
    "TornRunError",
    "TraceSchemaError",
    "Tracer",
    "default_service_rules",
    "get_clock",
    "load_run",
    "make_obs",
    "parse_dimensions",
    "parse_jsonl",
    "profile_payload",
    "profile_rows",
    "read_jsonl",
    "read_timeseries_jsonl",
    "registry_to_prom",
    "render_profile",
    "set_clock",
    "spans_to_jsonl",
    "use_clock",
    "windowed_value",
    "write_run",
    "write_timeseries_jsonl",
]
