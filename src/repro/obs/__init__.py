"""Campaign observability: tracing, unified metrics, stage profiling.

The three legs of production-scale campaign accounting:

- :mod:`repro.obs.clock` — the injectable wall clock (``PerfClock`` in
  real runs, ``TickClock`` in tests) every duration is read from,
- :mod:`repro.obs.trace` — structured spans
  (``campaign → shard → site → fetch/parse/detect/ws-poll``) exported as
  JSONL via ``--trace-out``,
- :mod:`repro.obs.metrics` — the counters/gauges/histograms registry
  whose single ``merge()`` law keeps sharded aggregation bit-identical
  and mode-invariant,
- :mod:`repro.obs.profile` — the :class:`Obs` facade pipelines hook into,
  plus the ``--profile`` per-stage latency table.
"""

from repro.obs.clock import PerfClock, TickClock, get_clock, set_clock, use_clock
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.profile import NULL_OBS, Obs, make_obs, profile_rows, render_profile
from repro.obs.trace import Span, Tracer, parse_jsonl, read_jsonl

__all__ = [
    "DEFAULT_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Obs",
    "PerfClock",
    "Span",
    "TickClock",
    "Tracer",
    "get_clock",
    "make_obs",
    "parse_jsonl",
    "profile_rows",
    "read_jsonl",
    "render_profile",
    "set_clock",
    "use_clock",
]
