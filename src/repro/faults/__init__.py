"""Deterministic fault injection and resilience policies.

The paper's measurements are *defined* by failure: zgrab only covers the
TLS-responsive web, the Chrome crawl exists because origins hang past its
15 s timeout, and the 500 ms pool polling misses job updates whenever an
endpoint flaps. This package makes those failure modes first-class in the
reproduction:

- :mod:`repro.faults.taxonomy` — the structured error taxonomy replacing
  stringly-typed failure reasons,
- :mod:`repro.faults.plan` — a seeded :class:`FaultPlan` whose decisions
  are pure functions of ``(seed, key)``, so identical plans inject
  identical faults regardless of execution order, sharding, or process
  boundaries,
- :mod:`repro.faults.ledger` — additive fault accounting (injected vs.
  observed vs. recovered) that merges across shards like every other
  campaign tally,
- :mod:`repro.faults.resilience` — retry budgets with seeded jitter,
  per-domain circuit breakers with half-open probing, and deadline
  propagation,
- :mod:`repro.faults.checkpoint` — the append-only journal that lets a
  shard killed mid-campaign resume and still merge bit-identical results.
"""

from repro.faults.checkpoint import CheckpointJournal
from repro.faults.ledger import FaultLedger
from repro.faults.plan import (
    FAULT_PROFILES,
    FaultKind,
    FaultPlan,
    InjectedFault,
    build_fault_plan,
)
from repro.faults.resilience import (
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    run_with_retry,
)
from repro.faults.taxonomy import ErrorClass, TRANSIENT_CLASSES, classify_reason

__all__ = [
    "BreakerPolicy",
    "BreakerRegistry",
    "CheckpointJournal",
    "CircuitBreaker",
    "ErrorClass",
    "FAULT_PROFILES",
    "FaultKind",
    "FaultLedger",
    "FaultPlan",
    "InjectedFault",
    "ResiliencePolicy",
    "RetryPolicy",
    "TRANSIENT_CLASSES",
    "build_fault_plan",
    "classify_reason",
    "run_with_retry",
]
