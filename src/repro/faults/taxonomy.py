"""The structured transfer-error taxonomy.

Failure reasons used to travel as bare strings (``"name not resolved"``,
``"timed out"``) that every consumer re-parsed with substring matches.
:class:`ErrorClass` gives each failure mode one canonical identity, and
:func:`classify_reason` maps the legacy reason strings onto it so existing
call sites (and their tests) keep working while new code switches to the
enum.

The split between *permanent* and *transient* classes drives the retry
layer: a DNS miss or a TLS-less host will fail identically on every
attempt, so retrying only burns the deadline budget; connection resets,
timeouts, and pool outages are worth another attempt.
"""

from __future__ import annotations

from enum import Enum


class ErrorClass(str, Enum):
    """Canonical failure classes of the measurement pipelines."""

    DNS = "dns"
    TLS = "tls"
    CONNECTION_RESET = "connection-reset"
    TIMEOUT = "timeout"
    HTTP_ERROR = "http-error"
    REDIRECT_LOOP = "redirect-loop"
    TRUNCATED = "truncated"
    INVALID_URL = "invalid-url"
    WEBSOCKET_DROP = "websocket-drop"
    POOL_OUTAGE = "pool-outage"
    PROTOCOL = "protocol"
    BREAKER_OPEN = "breaker-open"
    DEADLINE = "deadline"
    UNKNOWN = "unknown"


#: Classes a retry can plausibly fix. Everything else is permanent for the
#: duration of a campaign: retrying a dead name or an HTTP-only host only
#: spends the deadline budget.
TRANSIENT_CLASSES = frozenset(
    {
        ErrorClass.CONNECTION_RESET,
        ErrorClass.TIMEOUT,
        ErrorClass.POOL_OUTAGE,
    }
)


#: Legacy reason-string fragments → class, checked in order. First match
#: wins; keep the more specific fragments first.
_REASON_PATTERNS: tuple[tuple[str, ErrorClass], ...] = (
    ("name not resolved", ErrorClass.DNS),
    ("no websocket endpoint", ErrorClass.DNS),
    ("tls handshake", ErrorClass.TLS),
    ("connection reset", ErrorClass.CONNECTION_RESET),
    ("flapping origin", ErrorClass.CONNECTION_RESET),
    ("timed out", ErrorClass.TIMEOUT),
    ("stalled", ErrorClass.TIMEOUT),
    ("deadline", ErrorClass.DEADLINE),
    ("too many redirects", ErrorClass.REDIRECT_LOOP),
    ("404", ErrorClass.HTTP_ERROR),
    ("invalid url", ErrorClass.INVALID_URL),
    ("unavailable", ErrorClass.POOL_OUTAGE),
    ("circuit open", ErrorClass.BREAKER_OPEN),
)


def classify_reason(reason: str) -> ErrorClass:
    """Map a legacy reason string onto its :class:`ErrorClass`."""
    lowered = reason.lower()
    for fragment, error_class in _REASON_PATTERNS:
        if fragment in lowered:
            return error_class
    return ErrorClass.UNKNOWN


def is_transient(error_class: ErrorClass) -> bool:
    return error_class in TRANSIENT_CLASSES
