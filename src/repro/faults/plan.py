"""Seeded, deterministic fault plans.

A :class:`FaultPlan` decides, for every operation the pipelines perform,
whether to inject a failure — connection resets, TLS handshake failures,
DNS errors, truncated bodies, slow-then-fail transfers, flapping origins,
mid-session WebSocket drops, and pool endpoint outages.

Every decision is a **pure function** of ``(seed, kind, key)`` via
:func:`repro.sim.rng.hash_unit`; the plan holds no mutable state. That is
the property the chaos invariants rest on:

- a sharded campaign and a sequential campaign under the same plan see
  the exact same faults (decisions key on domains/URLs, never on order),
- a resumed campaign re-derives the same decisions for its remaining
  sites,
- the expected injection count can be *recomputed* after the fact, which
  is how the chaos tests audit the fault ledger.

Fault keying encodes each fault's lifetime:

- DNS/TLS faults key on the host only → permanent for the campaign,
- flapping origins key on the host, but fail only the first
  ``flap_failures`` attempts → recovered by any retry policy,
- resets and slow transfers key on ``(url, attempt)`` → transient,
- WebSocket drops key on the page session → deterministic per visit,
- pool outages key on ``(endpoint, poll sequence)`` and, server-side,
  on coarse time buckets → contiguous outage windows under 500 ms polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional, Union

from repro.faults.taxonomy import ErrorClass
from repro.sim.rng import hash_unit


class FaultKind(str, Enum):
    """Injectable fault kinds."""

    DNS = "dns"
    TLS = "tls"
    RESET = "reset"
    TRUNCATE = "truncate"
    SLOW = "slow"
    FLAP = "flap"
    WS_DROP = "ws-drop"
    POOL_OUTAGE = "pool-outage"


#: fault kind → the error class its injection surfaces as.
KIND_TO_CLASS: Mapping[FaultKind, ErrorClass] = {
    FaultKind.DNS: ErrorClass.DNS,
    FaultKind.TLS: ErrorClass.TLS,
    FaultKind.RESET: ErrorClass.CONNECTION_RESET,
    FaultKind.TRUNCATE: ErrorClass.TRUNCATED,
    FaultKind.SLOW: ErrorClass.TIMEOUT,
    FaultKind.FLAP: ErrorClass.CONNECTION_RESET,
    FaultKind.WS_DROP: ErrorClass.WEBSOCKET_DROP,
    FaultKind.POOL_OUTAGE: ErrorClass.POOL_OUTAGE,
}


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan decided to inject."""

    kind: FaultKind
    error_class: ErrorClass
    reason: str
    #: simulated seconds the failure consumed before surfacing (a slow
    #: transfer burns the client's timeout; a reset fails fast)
    elapsed: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic injection schedule for one campaign.

    ``rates`` maps :class:`FaultKind` (or its string value) to the
    per-decision injection probability. Kinds absent from the map are
    never injected.
    """

    seed: int = 2018
    rates: Mapping[Union[FaultKind, str], float] = field(default_factory=dict)
    #: a flapping origin fails this many attempts, then recovers
    flap_failures: int = 2
    #: fraction of the body kept by an injected truncation
    truncate_keep_fraction: float = 0.25
    #: frame count bounds for injected mid-session WebSocket drops
    ws_drop_min_frames: int = 1
    ws_drop_max_frames: int = 6
    #: server-side pool outages toggle on this time granularity (seconds),
    #: so consecutive 500 ms polls inside a bucket fail together
    pool_outage_bucket: float = 30.0

    def __post_init__(self) -> None:
        normalized: dict[str, float] = {}
        for kind, rate in dict(self.rates).items():
            key = kind.value if isinstance(kind, FaultKind) else str(kind)
            if key not in {k.value for k in FaultKind}:
                raise ValueError(f"unknown fault kind {kind!r}")
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"rate for {key} must be in [0, 1], got {rate}")
            normalized[key] = float(rate)
        object.__setattr__(self, "rates", normalized)

    # -- the decision primitive ---------------------------------------------------

    def rate(self, kind: FaultKind) -> float:
        return self.rates.get(kind.value, 0.0)

    def injects(self, kind: FaultKind, *key: str) -> bool:
        """Pure decision: inject ``kind`` for this key under this plan?"""
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        return hash_unit(self.seed, "fault", kind.value, *key) < rate

    # -- HTTP/TLS transfers -------------------------------------------------------

    def fetch_fault(
        self, scheme: str, host: str, url: str, attempt: int = 0
    ) -> Optional[InjectedFault]:
        """The fault (if any) injected into one fetch attempt.

        Checked in fixed order so a host hit by several kinds fails the
        same way every time: permanent faults (DNS, TLS) first, then the
        flap window, then per-attempt transients.
        """
        if self.injects(FaultKind.DNS, host):
            return InjectedFault(
                FaultKind.DNS, ErrorClass.DNS, "injected: name not resolved"
            )
        if scheme == "https" and self.injects(FaultKind.TLS, host):
            return InjectedFault(
                FaultKind.TLS, ErrorClass.TLS, "injected: TLS handshake failed"
            )
        if self.injects(FaultKind.FLAP, host) and attempt < self.flap_failures:
            return InjectedFault(
                FaultKind.FLAP,
                ErrorClass.CONNECTION_RESET,
                f"injected: flapping origin (attempt {attempt + 1}/{self.flap_failures})",
            )
        if self.injects(FaultKind.RESET, url, str(attempt)):
            return InjectedFault(
                FaultKind.RESET, ErrorClass.CONNECTION_RESET, "injected: connection reset"
            )
        if self.injects(FaultKind.SLOW, url, str(attempt)):
            return InjectedFault(
                FaultKind.SLOW,
                ErrorClass.TIMEOUT,
                "injected: transfer stalled; timed out",
            )
        return None

    def truncates(self, url: str) -> bool:
        """Inject a truncated body for this URL (success, short read)."""
        return self.injects(FaultKind.TRUNCATE, url)

    # -- verdict service ----------------------------------------------------------

    def signature_stall(self, domain: str) -> bool:
        """Service-plane chaos: stall the signature stage for this request?

        The verdict server charges a stalled lookup extra simulated
        latency (a cold signature-db shard, a lock convoy) but still
        answers — an injected-and-recovered fault. Keyed on the domain so
        identical runs stall identical requests.
        """
        return self.injects(FaultKind.SLOW, "service-signature", domain)

    # -- WebSockets ---------------------------------------------------------------

    def ws_drop_after(self, ws_url: str, session_key: str) -> Optional[int]:
        """Frames after which this session's channel drops, or ``None``."""
        if not self.injects(FaultKind.WS_DROP, ws_url, session_key):
            return None
        span = max(self.ws_drop_max_frames - self.ws_drop_min_frames, 0)
        offset = int(
            hash_unit(self.seed, "fault", "ws-drop-frames", ws_url, session_key)
            * (span + 1)
        )
        return self.ws_drop_min_frames + min(offset, span)

    # -- pool polling -------------------------------------------------------------

    def poll_fault(self, endpoint: str, sequence: int, attempt: int = 0) -> bool:
        """Fail attempt ``attempt`` of the ``sequence``-th poll of ``endpoint``?"""
        return self.injects(FaultKind.POOL_OUTAGE, endpoint, str(sequence), str(attempt))

    def pool_endpoint_down(self, endpoint_key: str, now: float) -> bool:
        """Server-side outage window check, bucketed on simulated time."""
        if self.rate(FaultKind.POOL_OUTAGE) <= 0.0:
            return False
        bucket = int(now // self.pool_outage_bucket)
        return self.injects(FaultKind.POOL_OUTAGE, endpoint_key, f"b{bucket}")


#: Named profiles for ``--fault-profile``. "mild" is the 5% campaign in
#: EXPERIMENTS.md; "heavy" the 20% one.
FAULT_PROFILES: dict[str, dict[FaultKind, float]] = {
    "none": {},
    "mild": {
        FaultKind.DNS: 0.01,
        FaultKind.TLS: 0.01,
        FaultKind.RESET: 0.05,
        FaultKind.SLOW: 0.02,
        FaultKind.FLAP: 0.03,
        FaultKind.TRUNCATE: 0.02,
        FaultKind.WS_DROP: 0.05,
        FaultKind.POOL_OUTAGE: 0.05,
    },
    "heavy": {
        FaultKind.DNS: 0.04,
        FaultKind.TLS: 0.04,
        FaultKind.RESET: 0.20,
        FaultKind.SLOW: 0.08,
        FaultKind.FLAP: 0.10,
        FaultKind.TRUNCATE: 0.08,
        FaultKind.WS_DROP: 0.20,
        FaultKind.POOL_OUTAGE: 0.20,
    },
}


def build_fault_plan(profile: str, seed: int = 2018) -> Optional[FaultPlan]:
    """Build a plan from a profile name or a ``kind=rate,...`` spec string.

    ``"none"`` (and ``""``) return ``None`` — no injection plane at all.
    Examples: ``"mild"``, ``"heavy"``, ``"reset=0.2,ws-drop=0.1"``.
    """
    profile = (profile or "none").strip()
    if profile in FAULT_PROFILES:
        rates = FAULT_PROFILES[profile]
        if not rates:
            return None
        return FaultPlan(seed=seed, rates=rates)
    rates_spec: dict[str, float] = {}
    for part in profile.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault profile {profile!r}: expected a profile name "
                f"({', '.join(sorted(FAULT_PROFILES))}) or kind=rate pairs"
            )
        kind, _, rate_text = part.partition("=")
        try:
            rates_spec[kind.strip()] = float(rate_text)
        except ValueError:
            raise ValueError(f"bad rate {rate_text!r} for fault kind {kind!r}") from None
    if not rates_spec:
        return None
    return FaultPlan(seed=seed, rates=rates_spec)
