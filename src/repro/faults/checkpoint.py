"""Append-only checkpoint journals for campaign shards.

Each shard writes one journal: a header line identifying the campaign
configuration, then a line per completed site carrying the site's
population index and its pickled per-site outcome. A shard process
killed mid-run leaves a valid prefix (plus at most one torn final line,
which the loader discards); on resume the shard replays the recorded
outcomes instead of re-fetching, then continues from the first unrecorded
site. Because per-site outcomes are additive and order-independent, the
merged campaign result is bit-identical to an uninterrupted run.

Format: one JSON object per line. The first line is the header,
``{"v": 1, "fp": <fingerprint>}``; every following line is
``{"i": <index>, "d": <base64 pickle>}``. JSON framing makes torn-write
detection trivial; pickle carries arbitrary outcome dataclasses
(detection reports included) without a parallel serialization schema.

The fingerprint pins the journal to one campaign configuration (dataset,
seed, scale, fault plan, shard partition — see
``repro.analysis.parallel``). A journal whose header does not match the
resuming run is *stale* — written under a different configuration — and
is discarded wholesale rather than replayed: its sites re-run, and the
first ``record()`` truncates the file under the new header. Without this
check, resuming with, say, a different seed would silently splice the old
run's outcomes into the new run's results.

.. warning::
   ``load()`` unpickles journal contents. Only point ``--resume-from``
   (or ``checkpoint_dir``) at directories this tool wrote and that you
   trust; unpickling data of unknown origin can execute arbitrary code.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional

JOURNAL_VERSION = 1


class CheckpointCorruptError(RuntimeError):
    """A journal has an undecodable line *before* its final line.

    Append-and-flush writes can only tear the tail, so damage anywhere
    else is genuine corruption (or the wrong file) — surfaced instead of
    silently skipped, because skipping would merge a partial replay as if
    it were complete.
    """


@dataclass
class CheckpointJournal:
    """One shard's crash-safe progress journal."""

    path: Path
    #: campaign fingerprint written to (and checked against) the header;
    #: a mismatch marks the journal stale and ``load()`` returns nothing
    fingerprint: str = ""
    _handle: Optional[IO[str]] = field(default=None, repr=False)
    _stale: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def load(self) -> dict[int, object]:
        """Completed ``index → outcome``; drops at most a torn tail.

        A missing, header-less, or fingerprint-mismatched journal loads
        empty (and is truncated by the next ``record()``). Corruption
        before the final line raises :class:`CheckpointCorruptError`.
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text().splitlines()
        if not self._header_matches(lines):
            self._stale = True
            return {}
        done: dict[int, object] = {}
        body = lines[1:]
        for position, raw in enumerate(body):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                index = int(record["i"])
                outcome = pickle.loads(base64.b64decode(record["d"]))
            except Exception as exc:
                if any(later.strip() for later in body[position + 1:]):
                    raise CheckpointCorruptError(
                        f"{self.path}: undecodable journal line "
                        f"{position + 2} is not a torn tail"
                    ) from exc
                break  # torn final line from a mid-write kill: the site re-runs
            done[index] = outcome
        return done

    def _header_matches(self, lines: list[str]) -> bool:
        if not lines:
            return False
        try:
            header = json.loads(lines[0])
            return (
                isinstance(header, dict)
                and header.get("v") == JOURNAL_VERSION
                and header.get("fp") == self.fingerprint
            )
        except Exception:
            return False  # torn or foreign header: treat the file as stale

    def record(self, index: int, outcome: object) -> None:
        """Append one completed site; flushed so a kill loses at most the
        lines still in the OS page cache (which the loader tolerates)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = (
                self._stale
                or not self.path.exists()
                or self.path.stat().st_size == 0
            )
            self._handle = open(self.path, "w" if fresh else "a")
            if fresh:
                self._handle.write(
                    json.dumps({"v": JOURNAL_VERSION, "fp": self.fingerprint}) + "\n"
                )
                self._stale = False
        payload = base64.b64encode(pickle.dumps(outcome)).decode("ascii")
        self._handle.write(json.dumps({"i": index, "d": payload}) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def shard_journal(
    directory: Optional[str], campaign: str, shard_id: int, fingerprint: str = ""
) -> Optional[CheckpointJournal]:
    """The journal for one shard of one campaign pass, or ``None``.

    ``campaign`` must identify the pass uniquely within the directory —
    the sharded campaigns prefix it with the dataset name so the four
    datasets of a ``reproduce`` run never share a journal file.
    """
    if directory is None:
        return None
    return CheckpointJournal(
        Path(directory) / f"{campaign}-shard{shard_id:04d}.journal",
        fingerprint=fingerprint,
    )
