"""Append-only checkpoint journals for campaign shards.

Each shard writes one journal: a line per completed site carrying the
site's population index and its pickled per-site outcome. A shard process
killed mid-run leaves a valid prefix (plus at most one torn final line,
which the loader discards); on resume the shard replays the recorded
outcomes instead of re-fetching, then continues from the first unrecorded
site. Because per-site outcomes are additive and order-independent, the
merged campaign result is bit-identical to an uninterrupted run.

Format: one JSON object per line, ``{"i": <index>, "d": <base64 pickle>}``.
JSON framing makes torn-write detection trivial; pickle carries arbitrary
outcome dataclasses (detection reports included) without a parallel
serialization schema.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional


@dataclass
class CheckpointJournal:
    """One shard's crash-safe progress journal."""

    path: Path
    _handle: Optional[IO[str]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def load(self) -> dict[int, object]:
        """Completed ``index → outcome``; silently drops a torn tail."""
        if not self.path.exists():
            return {}
        done: dict[int, object] = {}
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                index = int(record["i"])
                outcome = pickle.loads(base64.b64decode(record["d"]))
            except Exception:
                continue  # torn or corrupt line: the site will simply re-run
            done[index] = outcome
        return done

    def record(self, index: int, outcome: object) -> None:
        """Append one completed site; flushed so a kill loses at most the
        lines still in the OS page cache (which the loader tolerates)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        payload = base64.b64encode(pickle.dumps(outcome)).decode("ascii")
        self._handle.write(json.dumps({"i": index, "d": payload}) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def shard_journal(
    directory: Optional[str], campaign: str, shard_id: int
) -> Optional[CheckpointJournal]:
    """The journal for one shard of one campaign pass, or ``None``."""
    if directory is None:
        return None
    return CheckpointJournal(Path(directory) / f"{campaign}-shard{shard_id:04d}.journal")
