"""Resilience policies: retries, circuit breakers, deadlines.

One shared implementation for every consumer — the zgrab fetcher, the
shard workers in :mod:`repro.analysis.parallel`, and the pool observer —
replacing the ad-hoc backoff that used to live inside the parallel
executor.

Determinism: retry jitter is not drawn from a shared RNG but derived via
:func:`repro.sim.rng.hash_unit` from ``(policy seed, key, attempt)``, so
two shards retrying different domains never perturb each other's delays,
and a resumed campaign re-derives the same backoff schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, TypeVar

from repro.faults.ledger import FaultLedger
from repro.sim.rng import hash_unit

T = TypeVar("T")


# ---------------------------------------------------------------------------
# retry with seeded jitter


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with optional seeded jitter.

    ``jitter`` stretches each delay by up to that fraction; the stretch is
    a pure function of ``(seed, key, attempt)``, never of global RNG
    state. ``jitter=0`` reproduces the legacy fixed schedule exactly.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def delay(self, attempt: int, key: Iterable[str] = ()) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        base = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        if self.jitter <= 0.0:
            return base
        stretch = hash_unit(self.seed, "retry-jitter", *key, str(attempt))
        return base * (1.0 + self.jitter * stretch)


def run_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy = RetryPolicy(),
    sleep: Callable[[float], None] = time.sleep,
    key: Iterable[str] = (),
) -> tuple[T, int]:
    """Call ``fn`` with retries; returns ``(result, retries_used)``.

    Re-raises the last exception once ``max_attempts`` calls have failed.
    ``key`` scopes the jitter derivation (e.g. the shard id).
    """
    key = tuple(key)
    retries = 0
    while True:
        try:
            return fn(), retries
        except Exception:
            retries += 1
            if retries >= policy.max_attempts:
                raise
            sleep(policy.delay(retries, key))


# ---------------------------------------------------------------------------
# circuit breakers


CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip and when to probe."""

    #: consecutive failures that open the breaker
    failure_threshold: int = 3
    #: rejected calls while open before the next call probes (half-open)
    cooldown_rejections: int = 2


@dataclass
class CircuitBreaker:
    """One key's breaker: closed → open → half-open → closed/open.

    The simulation has no wall clock shared across consumers, so cooldown
    is counted in *rejected calls* rather than seconds: after
    ``cooldown_rejections`` short-circuited calls, the next one is allowed
    through as a half-open probe. A successful probe closes the breaker;
    a failed one re-opens it and restarts the cooldown.

    Thread-safe: ``allow`` and the two ``record_*`` transitions run under
    one lock, and ``probe_in_flight`` guarantees the half-open window
    admits exactly one probe — concurrent callers under the thread
    executor are short-circuited until the probe's outcome is recorded.
    """

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    ledger: Optional[FaultLedger] = None
    state: str = CLOSED
    consecutive_failures: int = 0
    rejections: int = 0
    probe_in_flight: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def allow(self) -> bool:
        """May the next call proceed? (May transition open → half-open.)"""
        with self._lock:
            if self.state == OPEN:
                if self.rejections >= self.policy.cooldown_rejections:
                    self.state = HALF_OPEN
                    self.probe_in_flight = True
                    if self.ledger is not None:
                        self.ledger.breaker_half_open += 1
                    return True
                self.rejections += 1
                return False
            if self.state == HALF_OPEN and self.probe_in_flight:
                self.rejections += 1
                return False
            if self.state == HALF_OPEN:
                self.probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self.state != CLOSED:
                self.state = CLOSED
                if self.ledger is not None:
                    self.ledger.breaker_closed += 1
            self.consecutive_failures = 0
            self.rejections = 0
            self.probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            self.probe_in_flight = False
            if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.policy.failure_threshold
            ):
                self.state = OPEN
                self.rejections = 0
                if self.ledger is not None:
                    self.ledger.breaker_opened += 1


@dataclass
class BreakerRegistry:
    """Per-key breakers sharing one policy and one ledger."""

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    ledger: Optional[FaultLedger] = None
    _breakers: dict = field(default_factory=dict)

    def get(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(policy=self.policy, ledger=self.ledger)
            self._breakers[key] = breaker
        return breaker

    def open_keys(self) -> list:
        return sorted(k for k, b in self._breakers.items() if b.state == OPEN)


# ---------------------------------------------------------------------------
# the bundled policy consumers take


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry budget + breaker settings + per-operation deadline.

    ``deadline`` is the total *simulated* seconds one operation (e.g. one
    domain's fetch, retries and backoff included) may consume before the
    caller stops retrying and reports a deadline failure — the deadline
    propagates into each attempt as a shrunken per-attempt timeout.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    deadline: float = 40.0

    def attempts(self) -> int:
        return max(self.retry.max_attempts, 1)
