"""Additive fault accounting.

A :class:`FaultLedger` travels with every campaign partial and merges the
same way the detection tallies do: plain sums, so sharded, sequential,
and resumed runs account identically. The bookkeeping invariant every
chaos test asserts:

    for every fault kind k:  injected[k] == recovered[k] + unrecovered[k]

- ``injected``    — one count per injected fault *occurrence* (a flapping
  origin retried twice injects twice),
- ``recovered``   — occurrences masked by a later success (the retry loop
  got through, or the page visit completed degraded),
- ``unrecovered`` — occurrences that surfaced in a terminal failure,
- ``observed``    — terminal failures by :class:`ErrorClass`, whether
  injected or organic (the population's own dead hosts count here too).

Breaker transitions and checkpoint events are campaign-health counters,
not per-fault ones; resumed runs legitimately differ from uninterrupted
runs in ``checkpoint_resumed`` while every fault counter stays identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class FaultLedger:
    """Merged per-shard (or per-site) fault accounting."""

    injected: Counter = field(default_factory=Counter)      # FaultKind.value → n
    observed: Counter = field(default_factory=Counter)      # ErrorClass.value → n
    recovered: Counter = field(default_factory=Counter)     # FaultKind.value → n
    unrecovered: Counter = field(default_factory=Counter)   # FaultKind.value → n
    retries: int = 0
    breaker_opened: int = 0
    breaker_half_open: int = 0
    breaker_closed: int = 0
    checkpoint_recorded: int = 0
    checkpoint_resumed: int = 0

    # -- recording helpers --------------------------------------------------------

    def record_injection(self, kind) -> None:
        self.injected[getattr(kind, "value", str(kind))] += 1

    def record_observed(self, error_class) -> None:
        self.observed[getattr(error_class, "value", str(error_class))] += 1

    def settle(self, kinds, recovered: bool) -> None:
        """Close out one operation's injected occurrences."""
        bucket = self.recovered if recovered else self.unrecovered
        for kind in kinds:
            bucket[getattr(kind, "value", str(kind))] += 1

    # -- aggregation --------------------------------------------------------------

    def merge(self, other: "FaultLedger") -> "FaultLedger":
        self.injected.update(other.injected)
        self.observed.update(other.observed)
        self.recovered.update(other.recovered)
        self.unrecovered.update(other.unrecovered)
        self.retries += other.retries
        self.breaker_opened += other.breaker_opened
        self.breaker_half_open += other.breaker_half_open
        self.breaker_closed += other.breaker_closed
        self.checkpoint_recorded += other.checkpoint_recorded
        self.checkpoint_resumed += other.checkpoint_resumed
        return self

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_observed(self) -> int:
        return sum(self.observed.values())

    @property
    def total_recovered(self) -> int:
        return sum(self.recovered.values())

    def balanced(self) -> bool:
        """The accounting invariant: every injection settled exactly once."""
        kinds = set(self.injected) | set(self.recovered) | set(self.unrecovered)
        return all(
            self.injected[k] == self.recovered[k] + self.unrecovered[k] for k in kinds
        )

    def as_registry(self):
        """Export into the unified :class:`~repro.obs.metrics.MetricsRegistry`.

        Per-fault accounting lands under ``fault.*``; campaign-health
        counters (retries, breaker transitions, checkpoint events — the
        ones resumed runs legitimately differ in) land under ``health.*``
        so mode-invariance checks can compare the fault plane alone.

        The export is a merge homomorphism:
        ``a.merge(b).as_registry() == a.as_registry().merge(b.as_registry())``
        (pinned by the property suite) — which is what lets the registry
        subsume the ledger's aggregation without changing any total.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for bucket, counter in (
            ("fault.injected", self.injected),
            ("fault.observed", self.observed),
            ("fault.recovered", self.recovered),
            ("fault.unrecovered", self.unrecovered),
        ):
            for kind, count in counter.items():
                registry.inc(f"{bucket}.{kind}", count)
        registry.inc("health.retries", self.retries)
        registry.inc("health.breaker.opened", self.breaker_opened)
        registry.inc("health.breaker.half_open", self.breaker_half_open)
        registry.inc("health.breaker.closed", self.breaker_closed)
        registry.inc("health.checkpoint.recorded", self.checkpoint_recorded)
        registry.inc("health.checkpoint.resumed", self.checkpoint_resumed)
        return registry

    # -- serialization -------------------------------------------------------------

    _COUNTER_FIELDS = ("injected", "observed", "recovered", "unrecovered")
    _INT_FIELDS = (
        "retries",
        "breaker_opened",
        "breaker_half_open",
        "breaker_closed",
        "checkpoint_recorded",
        "checkpoint_resumed",
    )

    def to_dict(self) -> dict:
        """Plain-dict export (sorted keys) for ``ledger.json``."""
        payload: dict = {
            name: dict(sorted(getattr(self, name).items())) for name in self._COUNTER_FIELDS
        }
        for name in self._INT_FIELDS:
            payload[name] = getattr(self, name)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultLedger":
        return cls(
            **{name: Counter(payload.get(name, {})) for name in cls._COUNTER_FIELDS},
            **{name: int(payload.get(name, 0)) for name in cls._INT_FIELDS},
        )

    def has_events(self) -> bool:
        return bool(
            self.injected
            or self.observed
            or self.retries
            or self.breaker_opened
            or self.checkpoint_recorded
            or self.checkpoint_resumed
        )

    # -- rendering ----------------------------------------------------------------

    SUMMARY_HEADER = ["fault kind", "injected", "recovered", "unrecovered"]

    def summary_rows(self) -> list[list[object]]:
        """Per-kind rows in canonical (count desc, kind asc) order."""
        kinds = set(self.injected) | set(self.recovered) | set(self.unrecovered)
        ordered = sorted(kinds, key=lambda k: (-self.injected[k], k))
        return [
            [k, self.injected[k], self.recovered[k], self.unrecovered[k]]
            for k in ordered
        ]

    def status_line(self) -> str:
        observed = ", ".join(
            f"{cls}:{n}" for cls, n in sorted(self.observed.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        parts = [
            f"injected={self.total_injected}",
            f"recovered={self.total_recovered}",
            f"retries={self.retries}",
            f"breaker open/half/closed={self.breaker_opened}/{self.breaker_half_open}/{self.breaker_closed}",
        ]
        if self.checkpoint_recorded or self.checkpoint_resumed:
            parts.append(
                f"checkpoint recorded/resumed={self.checkpoint_recorded}/{self.checkpoint_resumed}"
            )
        if observed:
            parts.append(f"observed failures: {observed}")
        return " ".join(parts)
